"""The parametric scenario universe: seeded, stratified config sampling.

The paper's evaluation fixes 19 datasets; the universe instead samples a
parametric space of synthetic graphs over the knobs
:mod:`repro.graphs.generators` already exposes — generator family, node
count, density (mean degree), degree skew, and community mixing — in the
style of GraphWorld (PAPERS.md).  Running every kernel over the sampled
universe turns single-benchmark verdicts into *crossover maps*: regions
of graph-parameter space labeled with the winning kernel.

Sampling contract (what the tests pin down):

* **Deterministic** — :func:`sample_universe` is a pure function of
  ``(samples, seed, axis ranges)``; the same call produces an identical
  config list in any process on any platform (NumPy ``default_rng``
  only, no wall clock, no hash randomization).
* **Stratified** — each continuous axis is split into ``samples``
  equal-probability strata and every stratum receives exactly one
  sample (a per-axis Latin-hypercube), so small universes still cover
  the full range of every axis instead of clustering.
* **Family-cycled** — the four generator families round-robin across
  config indices, so every universe of >= 4 samples exercises all of
  them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..config import env_int
from ..formats import HybridMatrix
from ..graphs import GENERATOR_FAMILIES, generate_graph

#: Default axis ranges.  Node counts are log-uniform between the floor
#: and the ``REPRO_WORLD_MAX_NODES`` cap; mean degree is log-uniform —
#: kernel crossovers track ratios, not absolute scale, on both axes.
DEFAULT_MIN_NODES = 192
DEFAULT_DEGREE_RANGE = (2.0, 32.0)

#: Community-mixing axis bounds (community family only).
P_IN_RANGE = (0.3, 0.95)


def default_samples() -> int:
    """Env default for the universe size (``REPRO_WORLD_SAMPLES``)."""
    return env_int("REPRO_WORLD_SAMPLES", 64)


def default_seed() -> int:
    """Env default for the sampling seed (``REPRO_WORLD_SEED``)."""
    return env_int("REPRO_WORLD_SEED", 0)


def default_max_nodes() -> int:
    """Env default for the size-axis cap (``REPRO_WORLD_MAX_NODES``)."""
    return env_int("REPRO_WORLD_MAX_NODES", 2048)


@dataclass(frozen=True)
class WorldConfig:
    """One sampled point of the scenario universe."""

    index: int          #: position in the universe (stable across runs)
    family: str         #: generator family (GENERATOR_FAMILIES)
    num_nodes: int      #: size axis (log-uniform strata)
    mean_degree: float  #: density axis (log-uniform strata)
    skew: float         #: normalized degree-skew knob in [0, 1)
    p_in: float         #: community mixing (community family only)
    graph_seed: int     #: generator seed derived from the universe seed

    @property
    def name(self) -> str:
        """Stable per-config label — the engine's graph key."""
        return f"world-{self.index:04d}"

    @property
    def num_edges(self) -> int:
        """Requested edge count (pre-dedup/self-loop adjustment)."""
        return max(self.num_nodes, int(round(self.mean_degree * self.num_nodes)))

    def to_dict(self) -> dict:
        """JSON-ready payload (adds the derived name/edge fields)."""
        d = asdict(self)
        d["name"] = self.name
        d["num_edges"] = self.num_edges
        return d


def build_world_graph(config: WorldConfig) -> HybridMatrix:
    """Materialize one config through the parametric generator surface."""
    return generate_graph(
        config.family,
        config.num_nodes,
        config.num_edges,
        skew=config.skew,
        p_in=config.p_in,
        seed=config.graph_seed,
    )


def _stratified_axis(n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` uniforms in [0, 1), exactly one per stratum ``[k/n, (k+1)/n)``.

    The stratum order is shuffled so axes decorrelate (Latin hypercube);
    both the offsets and the permutation come from the caller's seeded
    ``rng``, in a fixed draw order, so the result is deterministic.
    """
    offsets = rng.random(n)
    strata = rng.permutation(n).astype(np.float64)
    return (strata + offsets) / n


def _log_interp(u: np.ndarray, lo: float, hi: float) -> np.ndarray:
    return np.exp(np.log(lo) + u * (np.log(hi) - np.log(lo)))


def _graph_seed(seed: int, index: int) -> int:
    # A large odd stride keeps per-config generator seeds disjoint
    # across universe seeds without involving any hashing.
    return seed * 1_000_003 + index


def sample_universe(
    samples: int | None = None,
    seed: int | None = None,
    *,
    min_nodes: int = DEFAULT_MIN_NODES,
    max_nodes: int | None = None,
    degree_range: tuple[float, float] = DEFAULT_DEGREE_RANGE,
) -> list[WorldConfig]:
    """Sample a stratified universe of ``samples`` graph configs.

    Axis draw order is fixed (size, degree, skew, p_in) so adding axes
    later cannot silently reshuffle existing universes under the same
    seed.
    """
    samples = default_samples() if samples is None else samples
    seed = default_seed() if seed is None else seed
    max_nodes = default_max_nodes() if max_nodes is None else max_nodes
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    if not min_nodes < max_nodes:
        raise ValueError(
            f"need min_nodes < max_nodes, got {min_nodes} >= {max_nodes}"
        )
    deg_lo, deg_hi = degree_range
    if not 0 < deg_lo < deg_hi:
        raise ValueError(f"bad degree_range {degree_range}")

    rng = np.random.default_rng(seed)
    u_size = _stratified_axis(samples, rng)
    u_degree = _stratified_axis(samples, rng)
    u_skew = _stratified_axis(samples, rng)
    u_p_in = _stratified_axis(samples, rng)

    sizes = np.rint(_log_interp(u_size, min_nodes, max_nodes)).astype(int)
    degrees = _log_interp(u_degree, deg_lo, deg_hi)
    p_lo, p_hi = P_IN_RANGE
    p_ins = p_lo + u_p_in * (p_hi - p_lo)

    configs = []
    for i in range(samples):
        n = int(sizes[i])
        configs.append(
            WorldConfig(
                index=i,
                family=GENERATOR_FAMILIES[i % len(GENERATOR_FAMILIES)],
                num_nodes=n,
                # Cap density so tiny graphs stay sparse (the universe
                # models GNN adjacency, not dense blocks).
                mean_degree=float(min(degrees[i], n / 4)),
                skew=float(u_skew[i]),
                p_in=float(p_ins[i]),
                graph_seed=_graph_seed(seed, i),
            )
        )
    return configs


def grid_universe(
    degree_steps: int,
    skew_steps: int,
    *,
    seed: int | None = None,
    family: str = "community",
    num_nodes: int = 1024,
    degree_range: tuple[float, float] = DEFAULT_DEGREE_RANGE,
    p_in: float = 0.8,
) -> list[WorldConfig]:
    """A full density x skew grid at stratum midpoints (one family).

    The grid mode trades axis coverage for resolution: every cell of
    the crossover map receives the same number of configs, which makes
    the map's winner boundaries sharp instead of sampled.  ``seed``
    only derives the per-config generator seeds — the grid coordinates
    themselves are fixed.
    """
    if degree_steps <= 0 or skew_steps <= 0:
        raise ValueError("grid steps must be positive")
    seed = default_seed() if seed is None else seed
    deg_lo, deg_hi = degree_range
    configs = []
    for i in range(degree_steps):
        u_d = (i + 0.5) / degree_steps
        degree = float(_log_interp(np.array([u_d]), deg_lo, deg_hi)[0])
        for j in range(skew_steps):
            index = i * skew_steps + j
            configs.append(
                WorldConfig(
                    index=index,
                    family=family,
                    num_nodes=num_nodes,
                    mean_degree=min(degree, num_nodes / 4),
                    skew=(j + 0.5) / skew_steps,
                    p_in=p_in,
                    graph_seed=_graph_seed(seed, index),
                )
            )
    return configs
