"""Layer-2 determinism linter: positive and negative cases per rule.

Each rule gets at least one snippet it must flag and one idiomatic
spelling it must leave alone, plus the waiver mechanics.  The final test
pins the repo invariant the linter gates in CI: ``src/repro`` itself
lints clean (wall-clock surfaces carry justified waivers).
"""

import pytest

from repro.analysis import default_lint_root, lint_paths, lint_source

pytestmark = pytest.mark.analysis


def _rules(source):
    return [d.rule for d in lint_source(source)]


# -- lint/unseeded-rng ---------------------------------------------------

def test_legacy_global_rng_flagged():
    assert _rules("import numpy as np\nx = np.random.rand(3)\n") == [
        "lint/unseeded-rng"
    ]
    assert _rules("import numpy as np\nnp.random.seed(0)\n") == [
        "lint/unseeded-rng"
    ]


def test_bare_default_rng_flagged_seeded_allowed():
    assert _rules("import numpy as np\nr = np.random.default_rng()\n") == [
        "lint/unseeded-rng"
    ]
    assert _rules("import numpy as np\nr = np.random.default_rng(42)\n") == []
    assert _rules(
        "import numpy as np\nr = np.random.RandomState(seed=7)\n"
    ) == []


def test_full_numpy_module_name_also_matched():
    assert _rules("import numpy\nnumpy.random.shuffle(x)\n") == [
        "lint/unseeded-rng"
    ]


# -- lint/wallclock ------------------------------------------------------

def test_wallclock_reads_flagged():
    assert _rules("import time\nt = time.time()\n") == ["lint/wallclock"]
    assert _rules("import time\nt = time.perf_counter()\n") == [
        "lint/wallclock"
    ]
    assert _rules(
        "import datetime\nd = datetime.datetime.now()\n"
    ) == ["lint/wallclock"]


def test_wallclock_waiver_suppresses():
    src = (
        "import time\n"
        "t = time.perf_counter()  # lint: allow(wallclock) measured pass\n"
    )
    assert _rules(src) == []


def test_waiver_for_wrong_rule_does_not_suppress():
    src = (
        "import time\n"
        "t = time.time()  # lint: allow(set-iteration) wrong rule\n"
    )
    # The violation survives, and the waiver itself is flagged stale —
    # it names a real lint rule but suppresses nothing.
    assert sorted(_rules(src)) == ["lint/wallclock", "waiver/stale"]


def test_waiver_only_covers_its_own_line():
    src = (
        "import time\n"
        "a = time.time()  # lint: allow(wallclock) here only\n"
        "b = time.time()\n"
    )
    assert _rules(src) == ["lint/wallclock"]


def test_time_sleep_not_a_wallclock_read():
    assert _rules("import time\ntime.sleep(0.1)\n") == []


# -- lint/set-iteration --------------------------------------------------

def test_for_over_set_flagged():
    assert _rules("for x in set(items):\n    use(x)\n") == [
        "lint/set-iteration"
    ]
    assert _rules("ys = [f(x) for x in {1, 2, 3}]\n") == [
        "lint/set-iteration"
    ]


def test_order_sinks_on_sets_flagged():
    assert _rules("xs = list(set(items))\n") == ["lint/set-iteration"]
    assert _rules("xs = tuple(a_set | b_set)\n") == []  # names, not sets
    assert _rules("xs = list(set(a) - set(b))\n") == ["lint/set-iteration"]


def test_sorted_set_is_the_blessed_spelling():
    assert _rules("for x in sorted(set(items)):\n    use(x)\n") == []
    assert _rules("xs = sorted({1, 2})\n") == []


def test_set_membership_not_flagged():
    assert _rules("ok = x in set(items)\nseen = set()\nseen.add(x)\n") == []


# -- lint/float32-accum --------------------------------------------------

def test_dtype_float32_reduction_flagged():
    assert _rules(
        "import numpy as np\ns = x.sum(dtype=np.float32)\n"
    ) == ["lint/float32-accum"]
    assert _rules(
        "import numpy as np\ns = np.mean(x, dtype='float32')\n"
    ) == ["lint/float32-accum"]


def test_astype_float32_then_reduce_flagged():
    assert _rules(
        "import numpy as np\ns = x.astype(np.float32).sum()\n"
    ) == ["lint/float32-accum"]


def test_float64_and_default_accumulators_allowed():
    assert _rules("s = x.sum()\n") == []
    assert _rules(
        "import numpy as np\ns = x.sum(dtype=np.float64)\n"
    ) == []
    assert _rules(
        "import numpy as np\ny = x.astype(np.float32)\ns = float(x.sum())\n"
    ) == []


# -- machinery -----------------------------------------------------------

def test_syntax_error_reported_not_raised():
    diags = lint_source("def broken(:\n")
    assert [d.rule for d in diags] == ["lint/syntax"]


def test_diagnostics_carry_line_locations():
    diags = lint_source("import time\n\n\nt = time.time()\n")
    assert diags[0].location == "line 4"


def test_lint_paths_counts_files(tmp_path):
    (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "c.py").write_text("import time\ntime.time()\n")
    diags, nfiles = lint_paths([str(tmp_path)])
    assert nfiles == 2  # __pycache__ is skipped
    assert [d.rule for d in diags] == ["lint/wallclock"]


def test_repo_source_tree_lints_clean():
    """The CI invariant: src/repro has zero lint errors (waivers included)."""
    diags, nfiles = lint_paths([default_lint_root()])
    assert nfiles > 50
    assert diags == [], "\n".join(d.render() for d in diags)
