"""Tests for the cache models: exact LRU vs footprint estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import FootprintCacheModel, LRUCache, reuse_times, sampled_footprint


# ---------------------------------------------------------------------
# reuse_times
# ---------------------------------------------------------------------
def test_reuse_times_basic():
    stream = np.array([1, 2, 1, 1, 3, 2])
    np.testing.assert_array_equal(
        reuse_times(stream), [-1, -1, 2, 1, -1, 4]
    )


def test_reuse_times_all_cold():
    np.testing.assert_array_equal(
        reuse_times(np.array([5, 4, 3])), [-1, -1, -1]
    )


def test_reuse_times_empty():
    assert reuse_times(np.array([])).size == 0


@given(st.lists(st.integers(0, 8), min_size=1, max_size=64))
@settings(max_examples=60, deadline=None)
def test_reuse_times_matches_naive(stream):
    stream = np.array(stream)
    out = reuse_times(stream)
    last: dict[int, int] = {}
    for i, item in enumerate(stream):
        expected = i - last[item] if item in last else -1
        assert out[i] == expected
        last[int(item)] = i


# ---------------------------------------------------------------------
# sampled_footprint
# ---------------------------------------------------------------------
def test_sampled_footprint_monotone():
    rng = np.random.default_rng(0)
    stream = rng.integers(0, 50, size=2000)
    sizes = np.array([1, 10, 100, 1000, 2000])
    fp = sampled_footprint(stream, sizes)
    assert np.all(np.diff(fp) >= 0)
    assert fp[0] == 1.0
    assert fp[-1] <= 50


def test_sampled_footprint_constant_stream():
    fp = sampled_footprint(np.zeros(100, dtype=int), np.array([1, 50, 100]))
    np.testing.assert_allclose(fp, 1.0)


# ---------------------------------------------------------------------
# LRUCache (exact)
# ---------------------------------------------------------------------
def test_lru_basic_hit_miss():
    c = LRUCache(2)
    assert not c.access(1)
    assert not c.access(2)
    assert c.access(1)          # still resident
    assert not c.access(3)      # evicts 2 (LRU)
    assert not c.access(2)
    stats = c.run([])
    assert stats.accesses == 5
    assert stats.hits == 1


def test_lru_set_associative():
    c = LRUCache(4, num_sets=2)
    # Items 0, 2 map to set 0; 1, 3 map to set 1.
    for item in (0, 2, 4):
        c.access(item)  # set 0 holds 2 ways -> 0 evicted by 4
    assert not c.access(0)


def test_lru_validates():
    with pytest.raises(ValueError):
        LRUCache(0)
    with pytest.raises(ValueError):
        LRUCache(5, num_sets=2)


def test_cache_stats_hit_rate():
    c = LRUCache(8)
    stats = c.run([1, 1, 1, 2])
    assert stats.hit_rate == pytest.approx(0.5)
    assert stats.misses == 2


# ---------------------------------------------------------------------
# FootprintCacheModel vs exact LRU
# ---------------------------------------------------------------------
def test_footprint_all_fits():
    model = FootprintCacheModel(capacity_bytes=1024, bytes_per_item=1.0)
    stream = np.array([1, 2, 3, 1, 2, 3])
    # Everything fits: 3 cold misses, 3 hits.
    assert model.run(stream).hits == 3


def test_footprint_empty_stream():
    model = FootprintCacheModel(capacity_bytes=64, bytes_per_item=1.0)
    assert model.run(np.array([])).hit_rate == 0.0


def test_footprint_validates():
    with pytest.raises(ValueError):
        FootprintCacheModel(0, 1.0)
    with pytest.raises(ValueError):
        FootprintCacheModel(64, 0.0)
    with pytest.raises(ValueError):
        FootprintCacheModel(64, 1.0, concurrency=0.5)


def test_footprint_tracks_lru_on_cyclic_thrash():
    # Cyclic scan over more items than capacity: LRU hit rate is 0.
    stream = np.tile(np.arange(64), 20)
    model = FootprintCacheModel(capacity_bytes=16, bytes_per_item=1.0)
    exact = LRUCache(16).run(stream)
    approx = model.run(stream)
    assert exact.hit_rate == 0.0
    assert approx.hit_rate <= 0.15


def test_footprint_tracks_lru_on_local_stream():
    # Strong temporal locality: both should report high hit rates.
    rng = np.random.default_rng(1)
    blocks = [rng.integers(b * 8, b * 8 + 8, size=300) for b in range(12)]
    stream = np.concatenate(blocks)
    model = FootprintCacheModel(capacity_bytes=16, bytes_per_item=1.0)
    exact = LRUCache(16).run(stream)
    approx = model.run(stream)
    assert exact.hit_rate > 0.85
    assert approx.hit_rate > 0.75


def test_footprint_monotone_in_capacity():
    rng = np.random.default_rng(2)
    stream = rng.zipf(1.5, size=4000) % 1000
    rates = [
        FootprintCacheModel(capacity_bytes=c, bytes_per_item=1.0).hit_rate(
            stream
        )
        for c in (8, 64, 512, 4096)
    ]
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))


def test_footprint_concurrency_shrinks_capacity():
    rng = np.random.default_rng(3)
    stream = rng.integers(0, 256, size=4000)
    lone = FootprintCacheModel(capacity_bytes=128, bytes_per_item=1.0)
    shared = FootprintCacheModel(
        capacity_bytes=128, bytes_per_item=1.0, concurrency=8.0
    )
    assert shared.hit_rate(stream) <= lone.hit_rate(stream) + 1e-9
    assert shared.capacity_items == pytest.approx(16.0)
