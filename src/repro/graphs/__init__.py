"""Graph workloads: calibrated synthetic datasets (paper Table II),
graph-sampling subgraph collection, and degree statistics."""

from .generators import (
    GENERATOR_FAMILIES,
    chung_lu_graph,
    community_graph,
    generate_graph,
    lognormal_degree_graph,
    rmat_graph,
)
from .registry import (
    DEFAULT_MAX_EDGES,
    FULL_GRAPH_ORDER,
    FULL_GRAPH_SPECS,
    Dataset,
    GraphSpec,
    load_all,
    load_graph,
    max_edges_limit,
)
from .samplers import (
    Subgraph,
    build_sampling_dataset,
    induced_subgraph,
    sage_neighbor_sampler,
    saint_edge_sampler,
    saint_node_sampler,
    saint_walk_sampler,
)
from .stats import (
    DegreeStats,
    pearson_r,
    variance_graph,
    variance_suite,
    variance_suite_specs,
)

__all__ = [
    "GENERATOR_FAMILIES",
    "chung_lu_graph",
    "community_graph",
    "generate_graph",
    "lognormal_degree_graph",
    "rmat_graph",
    "DEFAULT_MAX_EDGES",
    "FULL_GRAPH_ORDER",
    "FULL_GRAPH_SPECS",
    "Dataset",
    "GraphSpec",
    "load_all",
    "load_graph",
    "max_edges_limit",
    "Subgraph",
    "build_sampling_dataset",
    "induced_subgraph",
    "sage_neighbor_sampler",
    "saint_edge_sampler",
    "saint_node_sampler",
    "saint_walk_sampler",
    "DegreeStats",
    "pearson_r",
    "variance_graph",
    "variance_suite",
    "variance_suite_specs",
]
