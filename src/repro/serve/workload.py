"""Synthetic replay workloads for exercising the estimation server.

A :class:`WorkloadSpec` describes a reproducible request stream over the
graph registry — which graphs, kernels, feature widths and devices to
draw from, how many requests, and how they arrive:

* ``replay`` — every request is submitted *before* the server starts,
  so the batcher drains them in deterministic full micro-batches.  This
  is the mode CI smokes: coalescing and dedup counters are exact
  functions of the spec.
* ``closed`` — ``clients`` threads each submit their share of the
  stream one request at a time, waiting for each answer before sending
  the next (closed-loop arrival; concurrency = client count).
* ``open`` — one thread submits the whole stream with seeded
  exponential inter-arrival gaps at ``arrival_rate_hz`` (open-loop
  arrival; queue depth floats with service time).

Every ``forced_deadline_every``-th request carries ``deadline_s=0.0``:
its budget is already exhausted when triaged, so it deterministically
exercises the degraded quick-model path regardless of machine speed.

:func:`run_workload` executes a spec against a fresh
:class:`~repro.serve.server.EstimationServer` and returns the report
dict (schema ``repro.serve.report/v1``) the serve CLI writes to
``results/serve_<name>.json``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import asdict, dataclass

from ..engine import Executor, check_bound
from ..obs import get_histogram
from .request import EstimateRequest, EstimateResponse, STATUSES
from .server import EstimationServer

SCHEMA = "repro.serve.report/v1"


@dataclass(frozen=True)
class WorkloadSpec:
    """One reproducible request stream against the estimation server."""

    name: str
    mode: str = "replay"            #: "replay" | "closed" | "open"
    graphs: tuple[str, ...] = ("aifb", "corafull")
    spmm_kernels: tuple[str, ...] = ("hp-spmm", "ge-spmm")
    sddmm_kernels: tuple[str, ...] = ("hp-sddmm",)
    ks: tuple[int, ...] = (32, 64)
    devices: tuple[str, ...] = ("v100",)
    num_requests: int = 48
    seed: int = 7
    max_edges: int = 20_000         #: registry edge cap for every request
    forced_deadline_every: int = 6  #: every Nth request gets deadline 0
    deadline_s: float | None = None  #: deadline for the other requests
    clients: int = 4                #: closed-loop client threads
    arrival_rate_hz: float = 200.0  #: open-loop mean arrival rate
    max_batch: int = 16
    batch_window_s: float = 0.02

    def __post_init__(self) -> None:
        if self.mode not in ("replay", "closed", "open"):
            raise ValueError(f"unknown workload mode {self.mode!r}")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")


#: Named presets the serve CLI exposes (``--workload <name>``).
WORKLOADS: dict[str, WorkloadSpec] = {
    "smoke": WorkloadSpec(name="smoke"),
    "closed-loop": WorkloadSpec(
        name="closed-loop", mode="closed", num_requests=64, clients=4,
        batch_window_s=0.005,
    ),
    "open-loop": WorkloadSpec(
        name="open-loop", mode="open", num_requests=64,
        arrival_rate_hz=400.0, deadline_s=0.5,
    ),
    "mixed-graphs": WorkloadSpec(
        name="mixed-graphs",
        graphs=("aifb", "corafull", "coauthor-cs", "amazon-photo"),
        num_requests=96, forced_deadline_every=8,
    ),
}


def generate_requests(spec: WorkloadSpec) -> list[EstimateRequest]:
    """The spec's request stream — a pure function of the spec."""
    rng = random.Random(spec.seed)
    requests: list[EstimateRequest] = []
    for i in range(spec.num_requests):
        op = rng.choice(("spmm", "sddmm"))
        kernels = spec.spmm_kernels if op == "spmm" else spec.sddmm_kernels
        forced = (
            spec.forced_deadline_every > 0
            and (i + 1) % spec.forced_deadline_every == 0
        )
        requests.append(
            EstimateRequest(
                op=op,
                kernel=rng.choice(kernels),
                graph=rng.choice(spec.graphs),
                k=rng.choice(spec.ks),
                device=rng.choice(spec.devices),
                deadline_s=0.0 if forced else spec.deadline_s,
                max_edges=spec.max_edges,
            )
        )
    return requests


def _drive_replay(server, requests) -> list:
    tickets = server.submit_many(requests)  # queued before the worker runs
    server.start()
    return [t.result() for t in tickets]


def _drive_closed(server, requests, clients: int) -> list:
    server.start()
    shares = [requests[c::clients] for c in range(clients)]
    results: list[list] = [[] for _ in range(clients)]

    def client(c: int) -> None:
        for req in shares[c]:
            results[c].append(server.estimate(req))

    threads = [
        threading.Thread(target=client, args=(c,), name=f"client-{c}")
        for c in range(clients)
        if shares[c]
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Reassemble stream order (client c owned indices c, c+clients, ...).
    out: list = [None] * len(requests)
    for c, share in enumerate(results):
        out[c::clients] = share
    return out


def _drive_open(server, requests, rate_hz: float, seed: int) -> list:
    server.start()
    rng = random.Random(seed + 1)
    tickets = []
    for req in requests:
        tickets.append(server.submit(req))
        time.sleep(rng.expovariate(rate_hz))
    return [t.result() for t in tickets]


def run_workload(
    spec: WorkloadSpec, *, executor: Executor | None = None
) -> dict:
    """Run one workload on a fresh server; returns the report dict.

    ``executor`` overrides the server's engine execution strategy —
    e.g. a started :class:`~repro.engine.ShardedExecutor` for
    multi-worker serving.  Estimates are deterministic, so the report's
    answers are identical for every executor; only latencies move.
    """
    requests = generate_requests(spec)
    server = EstimationServer(
        max_batch=spec.max_batch, batch_window_s=spec.batch_window_s,
        executor=executor,
    )
    hist = get_histogram("serve.request_latency")
    count_before = hist.count
    try:
        if spec.mode == "replay":
            responses = _drive_replay(server, requests)
        elif spec.mode == "closed":
            responses = _drive_closed(server, requests, spec.clients)
        else:
            responses = _drive_open(
                server, requests, spec.arrival_rate_hz, spec.seed
            )
    finally:
        server.stop()
    return build_report(spec, server, responses, count_before)


def build_report(
    spec: WorkloadSpec,
    server: EstimationServer,
    responses: list[EstimateResponse],
    hist_count_before: int = 0,
) -> dict:
    """Assemble the ``repro.serve.report/v1`` payload."""
    stats = server.stats()
    hist = get_histogram("serve.request_latency")
    latency = hist.summary()
    latency["count"] -= hist_count_before  # this run's share
    by_status = {s: stats.get(s, 0) for s in STATUSES}
    # Report-schema assertion: every answered bound must come from the
    # engine's canonical vocabulary (belt to EstimateResponse's braces).
    for r in responses:
        if r.bound is not None:
            check_bound(r.bound)
    answers = [
        {
            "op": r.request.op,
            "kernel": r.request.kernel,
            "graph": r.request.graph,
            "k": r.request.k,
            "device": r.request.device,
            "status": r.status,
            "time_s": r.time_s,
            "preprocessing_s": r.preprocessing_s,
            "bound": r.bound,
            "batch_id": r.batch_id,
            "batch_size": r.batch_size,
            "error": r.error,
        }
        for r in responses
    ]
    return {
        "schema": SCHEMA,
        "workload": asdict(spec),
        "summary": {
            "requests": len(responses),
            "by_status": by_status,
            "batches": stats["batches"],
            "coalesced": stats["coalesced"],
            "deduped": stats["deduped"],
            "queue_depth_max": stats["queue_depth_max"],
            "batch_size_max": stats["batch_size_max"],
        },
        "latency_s": latency,
        "responses": answers,
    }
