"""L2 cache models for the simulator.

Two models are provided:

* :class:`FootprintCacheModel` — an analytic, fully-vectorized hit-rate
  estimator for long access streams based on reuse *time* and a sampled
  footprint function (Denning working-set theory: an access whose reuse
  window touches a footprint larger than the cache is a miss).  This is
  the model used by kernel cost models; it is what makes Graph Clustering
  based Reordering show up as fewer DRAM transactions.

* :class:`LRUCache` — an exact set-associative LRU simulator used by the
  test-suite to validate the analytic estimator on small streams.

Both operate on *item* streams (e.g. the column index of each SpMM
nonzero), with a caller-supplied ``bytes_per_item`` (e.g. ``K * 4`` for a
feature-matrix row).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


def previous_positions(stream: np.ndarray) -> np.ndarray:
    """Position of the previous access to the same item, or ``-1``.

    Vectorized: O(n log n) via a stable sort on item id.  This array is
    the shared substrate of both :func:`reuse_times` (``i - prev[i]``)
    and :func:`sampled_footprint` (an access is the first of its item
    within window ``[s, s+w)`` iff ``prev[i] < s``).
    """
    stream = np.asarray(stream)
    n = stream.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(stream, kind="stable")
    sorted_items = stream[order]
    pos = order.astype(np.int64)
    out = np.full(n, -1, dtype=np.int64)
    same_as_prev = sorted_items[1:] == sorted_items[:-1]
    out[pos[1:]] = np.where(same_as_prev, pos[:-1], -1)
    return out


def reuse_times(stream: np.ndarray) -> np.ndarray:
    """Accesses elapsed since the previous access to the same item.

    Returns an int64 array aligned with ``stream``; first-ever accesses get
    ``-1``.
    """
    prev = previous_positions(stream)
    n = prev.size
    if n == 0:
        return prev
    return np.where(prev >= 0, np.arange(n, dtype=np.int64) - prev, -1)


def sampled_footprint(
    stream: np.ndarray,
    window_sizes: np.ndarray,
    samples_per_size: int = 48,
    seed: int = 0,
    *,
    prev: np.ndarray | None = None,
) -> np.ndarray:
    """Estimate the average number of distinct items in windows of each size.

    For each window size ``w`` the estimator averages exact distinct
    counts over ``samples_per_size`` windows at deterministic,
    evenly-spread offsets (salted by ``seed``).  The result is forced
    monotone non-decreasing in ``w`` (footprints are, in expectation).

    The count for a window ``[s, s+w)`` is the number of accesses whose
    previous same-item access falls before ``s`` — a single vectorized
    comparison against the :func:`previous_positions` array, instead of
    hashing every window with ``np.unique`` (which dominated whole
    experiment pipelines).  Callers that already hold the ``prev`` array
    can pass it to skip the one O(n log n) sort.
    """
    stream = np.asarray(stream)
    n = stream.size
    out = np.empty(len(window_sizes), dtype=np.float64)
    rng = np.random.default_rng(seed)
    if prev is None:
        prev = previous_positions(stream)
    for i, w in enumerate(window_sizes):
        w = int(min(w, n))
        if w <= 0:
            out[i] = 0.0
            continue
        max_start = n - w
        if max_start <= 0:
            starts = np.array([0])
        else:
            k = min(samples_per_size, max_start + 1)
            starts = np.unique(
                (rng.random(k) * (max_start + 1)).astype(np.int64)
            )
        counts = [
            int(np.count_nonzero(prev[s : s + w] < s)) for s in starts
        ]
        out[i] = float(np.mean(counts))
    return np.maximum.accumulate(out)


@dataclass(frozen=True)
class CacheStats:
    """Result of running a stream through a cache model."""

    accesses: int
    hits: int

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served by the cache (0 for an empty stream)."""
        return self.hits / self.accesses if self.accesses else 0.0


class FootprintCacheModel:
    """Analytic LRU hit-rate estimator for a single access stream.

    An access with reuse time ``t`` hits iff the expected footprint of a
    ``t``-access window fits in the effective capacity.  The effective
    capacity is the cache size divided by ``concurrency``, modelling the
    interleaving of many concurrent warps' streams (each warp sees only a
    fraction of the cache).
    """

    #: Log-spaced window sizes used for footprint sampling.
    NUM_WINDOW_SIZES = 24

    def __init__(
        self,
        capacity_bytes: int,
        bytes_per_item: float,
        *,
        concurrency: float = 1.0,
        samples_per_size: int = 48,
        seed: int = 0,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if bytes_per_item <= 0:
            raise ValueError("bytes_per_item must be positive")
        if concurrency < 1.0:
            raise ValueError("concurrency must be >= 1")
        self.capacity_bytes = int(capacity_bytes)
        self.bytes_per_item = float(bytes_per_item)
        self.concurrency = float(concurrency)
        self.samples_per_size = int(samples_per_size)
        self.seed = int(seed)

    @property
    def capacity_items(self) -> float:
        """Items that fit in the effective (concurrency-shared) capacity."""
        return self.capacity_bytes / self.concurrency / self.bytes_per_item

    def run(self, stream: np.ndarray) -> CacheStats:
        """Estimate hits for ``stream`` (array of item ids, access order)."""
        stream = np.asarray(stream)
        n = stream.size
        if n == 0:
            return CacheStats(accesses=0, hits=0)
        prev = previous_positions(stream)
        t = np.where(prev >= 0, np.arange(n, dtype=np.int64) - prev, -1)
        cap = self.capacity_items
        # Distinct items == first-ever accesses (prev < 0).
        if cap >= int(np.count_nonzero(prev < 0)):
            # Everything fits: every non-cold access hits.
            hits = int(np.count_nonzero(t >= 0))
            return CacheStats(accesses=n, hits=hits)
        sizes = np.unique(
            np.geomspace(1, n, num=self.NUM_WINDOW_SIZES).astype(np.int64)
        )
        fp = sampled_footprint(
            stream,
            sizes,
            samples_per_size=self.samples_per_size,
            seed=self.seed,
            prev=prev,
        )
        # Largest reuse time whose footprint still fits in the cache.
        fits = fp <= cap
        if not fits.any():
            threshold = 0
        else:
            threshold = int(sizes[np.nonzero(fits)[0][-1]])
        hits = int(np.count_nonzero((t >= 0) & (t <= threshold)))
        return CacheStats(accesses=n, hits=hits)

    def hit_rate(self, stream: np.ndarray) -> float:
        """Convenience wrapper returning just the hit fraction."""
        return self.run(stream).hit_rate


class LRUCache:
    """Exact set-associative LRU cache simulator (small streams only).

    Used in tests as ground truth for :class:`FootprintCacheModel`.
    ``num_sets == 1`` gives fully-associative LRU.
    """

    def __init__(
        self, capacity_items: int, *, num_sets: int = 1
    ) -> None:
        if capacity_items <= 0:
            raise ValueError("capacity_items must be positive")
        if num_sets <= 0 or capacity_items % num_sets != 0:
            raise ValueError("capacity must divide evenly into sets")
        self.capacity_items = capacity_items
        self.num_sets = num_sets
        self.ways = capacity_items // num_sets
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(num_sets)]
        self.hits = 0
        self.accesses = 0

    def access(self, item: int) -> bool:
        """Access one item; returns True on hit."""
        s = self._sets[int(item) % self.num_sets]
        self.accesses += 1
        if item in s:
            s.move_to_end(item)
            self.hits += 1
            return True
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[item] = True
        return False

    def run(self, stream) -> CacheStats:
        """Run a whole stream; accumulates into and returns overall stats."""
        for item in np.asarray(stream).ravel():
            self.access(int(item))
        return CacheStats(accesses=self.accesses, hits=self.hits)
