"""Regression tests: TimingContext kernel-time cache keying.

The cache used to key on ``id(S)``.  CPython reuses object ids after
garbage collection, so a sampling-mode training loop that creates and
drops one subgraph matrix per iteration could read a stale time for a
*different* matrix.  The key is now the structural fingerprint from
:mod:`repro.perf.fingerprint` (+ K).
"""

import gc

import pytest

from repro.gnn.timing import TimingContext

from tests.conftest import random_hybrid

pytestmark = pytest.mark.obs


def test_cache_keys_on_structure_not_identity():
    """Two objects with identical structure share one cache entry.

    Pre-fix (id keys) this recomputed per object and held two entries.
    """
    ctx = TimingContext()
    a = random_hybrid(200, 200, 2000, seed=7)
    b = random_hybrid(200, 200, 2000, seed=7)
    assert a is not b
    t_a = ctx.spmm_time(a, 32)
    t_b = ctx.spmm_time(b, 32)
    assert t_a == t_b
    assert len(ctx._spmm_cache) == 1


def test_different_structures_get_different_entries():
    ctx = TimingContext()
    a = random_hybrid(200, 200, 2000, seed=7)
    c = random_hybrid(300, 300, 9000, seed=8)
    t_a = ctx.spmm_time(a, 32)
    t_c = ctx.spmm_time(c, 32)
    assert t_a != t_c
    assert len(ctx._spmm_cache) == 2
    # Same matrix, different K: its own entry too.
    ctx.spmm_time(a, 64)
    assert len(ctx._spmm_cache) == 3


def test_id_reuse_does_not_serve_stale_times():
    """Force CPython id reuse and check the time tracks the new matrix.

    This is the sampling-mode training pattern: one subgraph matrix per
    iteration, the previous one dropped.  Pre-fix, the recycled id made
    ``spmm_time`` return the *old* matrix's cached time.
    """
    from repro.formats.hybrid import HybridMatrix

    ctx = TimingContext()
    first = random_hybrid(200, 200, 1000, seed=50)
    # Pre-build the 4x-larger matrix's arrays so that, once ``first`` is
    # freed, the only allocations are bare HybridMatrix wrappers of the
    # same size class as the freed instance.
    big = random_hybrid(400, 400, 8000, seed=60)
    row, col, val, shape = big.row, big.col, big.val, big.shape
    del big
    t_first = ctx.spmm_time(first, 32)
    reused_id = id(first)
    del first
    gc.collect()
    # ``first``'s slot now sits in the allocator's free list.  Allocate
    # same-sized instances, keeping misses alive, until the free list
    # hands that slot back.
    second = None
    hold = []
    for _ in range(65536):
        cand = HybridMatrix(row=row, col=col, val=val, shape=shape)
        if id(cand) == reused_id:
            second = cand
            break
        hold.append(cand)
    if second is None:
        pytest.skip("interpreter did not reuse the object id")
    t_second = ctx.spmm_time(second, 32)
    # A 4x larger matrix cannot have the same simulated time: equality
    # here means the stale entry for the dead matrix was served.
    assert t_second != t_first


def test_sddmm_cache_also_keys_on_structure():
    ctx = TimingContext()
    a = random_hybrid(200, 200, 2000, seed=7)
    b = random_hybrid(200, 200, 2000, seed=7)
    assert ctx.sddmm_time(a, 32) == ctx.sddmm_time(b, 32)
    assert len(ctx._sddmm_cache) == 1


def test_record_ops_accrue_through_structural_cache(small_matrix):
    ctx = TimingContext()
    ctx.record_spmm(small_matrix, 32)
    ctx.record_spmm(small_matrix, 32)
    assert ctx.num_sparse_ops == 2
    assert ctx.sparse_s == pytest.approx(2 * ctx.spmm_time(small_matrix, 32))
