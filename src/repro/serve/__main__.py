"""CLI: replay a synthetic workload through the estimation server.

Usage::

    python -m repro.serve --workload smoke
    python -m repro.serve --workload open-loop --requests 128
    python -m repro.serve --list

    # socket serving tier: a server process...
    python -m repro.serve --serve --port 7431 --workers 2 --warm soak
    # ...and a remote client driving a workload against it
    python -m repro.serve --workload soak --connect 127.0.0.1:7431

Writes ``results/serve_<workload>.json`` (override the directory with
``REPRO_RESULTS_DIR``) plus a ``serve_<workload>.manifest.json`` run
manifest whose metrics snapshot carries the serving counters and the
``serve.request_latency`` p50/p95/p99.  ``REPRO_TRACE=<path>`` records
per-request and per-batch spans alongside the usual estimate spans.

``--serve`` runs the socket front end (:mod:`repro.serve.net`) until
interrupted; with ``--workers N`` batches run on N persistent shard
workers with a :class:`~repro.serve.router.ShardRouter` pinning each
graph to the worker owning its structural fingerprint.  ``--warm
<workload>`` pre-evaluates that workload's unique signatures through
the engine before accepting connections (and adopts the spec's batch
parameters), so an open-loop soak measures steady-state latency rather
than cold caches.  ``--connect HOST:PORT`` drives the named workload
remotely and writes the same report plus a ``client_latency_s``
end-to-end section.

Exit codes: 0 on success, 2 on configuration errors (unknown workload
or invalid overrides) — matching the ``repro.obs diff`` convention.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import sys
import threading

from ..bench.runner import results_dir
from ..obs import export_trace, tracing_enabled, write_manifest
from .workload import WORKLOADS, generate_requests, run_workload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run a synthetic workload against the estimation server.",
    )
    parser.add_argument(
        "--workload", default="smoke",
        help=f"workload preset ({', '.join(WORKLOADS)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list workload presets and exit"
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="override request count"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the stream seed"
    )
    parser.add_argument(
        "--max-edges", type=int, default=None,
        help="override the registry edge cap",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for batch fan-out (sets REPRO_JOBS)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "serve batches through N persistent sharded worker servers "
            "(repro.engine.ShardedExecutor) instead of per-batch pools; "
            "with --serve, a ShardRouter pins each graph to the worker "
            "owning its structural fingerprint"
        ),
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="run the socket front end until interrupted (no workload)",
    )
    parser.add_argument(
        "--host", default=None,
        help="bind/connect address (default REPRO_SERVE_HOST)",
    )
    parser.add_argument(
        "--port", type=int, default=None,
        help="bind port, 0 = ephemeral (default REPRO_SERVE_PORT)",
    )
    parser.add_argument(
        "--queue-high", type=int, default=None,
        help="load-shed watermark (default REPRO_SERVE_QUEUE_HIGH)",
    )
    parser.add_argument(
        "--warm", default=None, metavar="WORKLOAD",
        help=(
            "with --serve: pre-evaluate this workload's unique request "
            "signatures (and adopt its batch parameters) before "
            "accepting connections"
        ),
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="drive the workload against a remote front end",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, spec in WORKLOADS.items():
            print(
                f"{name}: mode={spec.mode} requests={spec.num_requests} "
                f"graphs={','.join(spec.graphs)}"
            )
        return 0
    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.serve:
        if args.jobs is not None:
            os.environ["REPRO_JOBS"] = str(args.jobs)
        return _serve_mode(args)
    if args.connect is not None and args.workers is not None:
        print(
            "error: --workers configures a local server; it cannot be "
            "combined with --connect (start the remote side with "
            "--serve --workers N instead)",
            file=sys.stderr,
        )
        return 2
    if args.workload not in WORKLOADS:
        print(
            f"error: unknown workload {args.workload!r}; "
            f"choose from {', '.join(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)

    spec = WORKLOADS[args.workload]
    overrides = {}
    if args.requests is not None:
        overrides["num_requests"] = args.requests
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.max_edges is not None:
        overrides["max_edges"] = args.max_edges
    if overrides:
        try:
            spec = dataclasses.replace(spec, **overrides)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.connect is not None:
        from .net import run_workload_remote

        try:
            host, port_text = args.connect.rsplit(":", 1)
            port = int(port_text)
        except ValueError:
            print(
                f"error: --connect expects HOST:PORT, got {args.connect!r}",
                file=sys.stderr,
            )
            return 2
        try:
            report = run_workload_remote(spec, host, port)
        except OSError as exc:
            print(
                f"error: cannot reach {args.connect}: {exc}", file=sys.stderr
            )
            return 2
    elif args.workers is not None:
        from ..engine import ShardedExecutor

        with ShardedExecutor(workers=args.workers) as executor:
            report = run_workload(spec, executor=executor)
            print(
                f"[sharded: {executor.worker_count} worker servers, "
                f"dispatch={sorted(executor.dispatch_counts.values())}]",
                file=sys.stderr,
            )
    else:
        report = run_workload(spec)

    from ..store import store_counters, store_enabled

    if store_enabled():
        sc = store_counters()
        print(
            f"[store: {sc['segments']} segments, "
            f"{sc['bytes_shared']} bytes shared, "
            f"attaches={sc['attaches']}+{sc['attach_hits']} cached, "
            f"fallbacks={sc['fallbacks']}]",
            file=sys.stderr,
        )

    experiment = f"serve_{spec.name}"
    base = results_dir()
    path = os.path.join(base, f"{experiment}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    write_manifest(experiment, base, dataclasses.asdict(spec))

    summary = report["summary"]
    latency = report["latency_s"]
    print(
        f"[serve {spec.name}: {summary['requests']} requests in "
        f"{summary['batches']} batches | "
        f"ok={summary['by_status']['ok']} "
        f"degraded={summary['by_status']['degraded']} "
        f"timeout={summary['by_status']['timeout']} "
        f"error={summary['by_status']['error']} | "
        f"coalesced={summary['coalesced']} deduped={summary['deduped']} | "
        f"p50={latency['p50'] * 1e3:.2f}ms p95={latency['p95'] * 1e3:.2f}ms "
        f"p99={latency['p99'] * 1e3:.2f}ms -> {path}]",
        file=sys.stderr,
    )
    client_latency = report.get("client_latency_s")
    if client_latency is not None:
        print(
            f"[client end-to-end: "
            f"p50={client_latency['p50'] * 1e3:.2f}ms "
            f"p95={client_latency['p95'] * 1e3:.2f}ms "
            f"p99={client_latency['p99'] * 1e3:.2f}ms "
            f"max={client_latency['max'] * 1e3:.2f}ms]",
            file=sys.stderr,
        )
    if tracing_enabled():
        trace_path = export_trace()
        print(f"[trace -> {trace_path}]", file=sys.stderr)
    return 0


def _serve_mode(args) -> int:
    """Run the socket front end until SIGINT/SIGTERM."""
    from .net import SocketFrontEnd
    from .server import EstimationServer

    warm_spec = None
    if args.warm is not None:
        if args.warm not in WORKLOADS:
            print(
                f"error: unknown --warm workload {args.warm!r}; "
                f"choose from {', '.join(WORKLOADS)}",
                file=sys.stderr,
            )
            return 2
        warm_spec = WORKLOADS[args.warm]

    executor = None
    router = None
    if args.workers is not None:
        from ..engine import ShardedExecutor
        from .router import ShardRouter

        router = ShardRouter(args.workers)
        executor = ShardedExecutor(
            workers=args.workers, affinity=router.shard_of_unit
        )
        # Fork the shard workers before any serving thread exists —
        # forking a process that already runs threads is the classic
        # deadlock the procsafety thread-before-fork rule polices.
        executor.start()

    server_kwargs: dict = {}
    if warm_spec is not None:
        # The server's batching parameters come from the workload it is
        # being warmed for, so a remote soak measures the same batcher
        # configuration the in-process run of that spec would use.
        server_kwargs = dict(
            max_batch=warm_spec.max_batch,
            batch_window_s=warm_spec.batch_window_s,
        )
    server = EstimationServer(executor=executor, **server_kwargs)
    front = SocketFrontEnd(
        server, args.host, args.port, queue_high=args.queue_high
    )
    try:
        if warm_spec is not None:
            n_warm = server.warm(generate_requests(warm_spec))
            print(
                f"[warm: {n_warm} unique signatures from "
                f"{warm_spec.name!r}]",
                file=sys.stderr,
            )
        front.start()
        host, port = front.address
        line = {
            "serving": {
                "host": host, "port": port,
                "workers": args.workers or 0,
                "queue_high": front.queue_high,
            }
        }
        print(json.dumps(line), flush=True)
        if router is not None:
            print(
                f"[shard router: {router.shards} shards, "
                f"{len(router.table())} placements after warmup]",
                file=sys.stderr,
            )
        stop = threading.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, lambda *_: stop.set())
        stop.wait()
        print("[serve: shutting down]", file=sys.stderr)
    finally:
        front.stop()
        server.stop()
        if executor is not None:
            executor.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
