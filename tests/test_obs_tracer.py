"""The span tracer: off-by-default, nesting, Chrome-trace export."""

import json

import pytest

from repro.obs import (
    Tracer,
    export_trace,
    get_tracer,
    set_tracer,
    trace_emit,
    trace_span,
    traced,
    tracing_enabled,
)
from repro.obs.tracer import HOST_TRACK, SIM_TRACK, _TRACK_PIDS

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def no_tracer(monkeypatch):
    """Every test starts (and ends) with tracing fully off."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    set_tracer(None)
    yield
    set_tracer(None)


# ----------------------------------------------------------------------
# Disabled by default
# ----------------------------------------------------------------------

def test_tracing_disabled_by_default():
    assert not tracing_enabled()
    assert get_tracer() is None
    assert export_trace() is None


def test_disabled_spans_are_one_shared_noop_object():
    """The disabled path must allocate nothing per call."""
    cm1 = trace_span("anything", cat="x", arg=1)
    cm2 = trace_span("else")
    assert cm1 is cm2
    with cm1:
        pass  # and it is a working context manager
    trace_emit("sim", 0.0, 1.0)  # no-op, no error


def test_env_var_enables_tracing(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.json"))
    set_tracer(None)  # re-arm the env check
    assert tracing_enabled()
    with trace_span("from-env"):
        pass
    path = export_trace()
    assert path == str(tmp_path / "t.json")
    with open(path) as f:
        doc = json.load(f)
    assert any(e.get("name") == "from-env" for e in doc["traceEvents"])


def test_env_value_zero_means_off(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "0")
    set_tracer(None)
    assert not tracing_enabled()


# ----------------------------------------------------------------------
# Span recording + nesting
# ----------------------------------------------------------------------

def test_span_nesting_depth_and_containment():
    tracer = Tracer()
    set_tracer(tracer)
    with trace_span("outer", cat="t"):
        with trace_span("inner", cat="t"):
            pass
        with trace_span("inner2", cat="t"):
            pass
    # Spans are appended on *exit*: inner, inner2, outer.
    names = [s.name for s in tracer.spans]
    assert names == ["inner", "inner2", "outer"]
    inner, inner2, outer = tracer.spans
    assert outer.depth == 0 and inner.depth == 1 and inner2.depth == 1
    # Wall-clock containment: children start/end inside the parent.
    for child in (inner, inner2):
        assert child.ts_us >= outer.ts_us
        assert child.ts_us + child.dur_us <= outer.ts_us + outer.dur_us + 1e-6
    # inner2 starts after inner ends.
    assert inner2.ts_us >= inner.ts_us + inner.dur_us


def test_span_records_args_and_exceptions_still_close():
    tracer = Tracer()
    set_tracer(tracer)
    with pytest.raises(RuntimeError):
        with trace_span("boom", cat="t", graph="flickr", k=64):
            raise RuntimeError("inside")
    (span,) = tracer.spans
    assert span.args == {"graph": "flickr", "k": 64}
    assert span.dur_us >= 0.0


def test_traced_decorator_wraps_calls():
    tracer = Tracer()
    set_tracer(tracer)

    @traced("fn-span", cat="t")
    def double(x):
        return 2 * x

    assert double(21) == 42
    assert [s.name for s in tracer.spans] == ["fn-span"]


def test_trace_emit_places_span_on_sim_track():
    tracer = Tracer()
    set_tracer(tracer)
    trace_emit("spmm[hp-spmm]", ts_us=10.0, dur_us=5.0, cat="gnn", nnz=100)
    (span,) = tracer.spans
    assert span.track == SIM_TRACK
    assert span.ts_us == 10.0 and span.dur_us == 5.0
    assert span.args == {"nnz": 100}


# ----------------------------------------------------------------------
# Chrome-trace export schema
# ----------------------------------------------------------------------

def test_chrome_trace_schema(tmp_path):
    tracer = Tracer()
    set_tracer(tracer, str(tmp_path / "trace.json"))
    with trace_span("host-span", cat="bench", graph="g"):
        pass
    trace_emit("sim-span", ts_us=0.0, dur_us=2.5)
    path = export_trace()
    with open(path) as f:
        doc = json.load(f)

    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    # Both tracks announce a process_name for the viewer.
    assert {m["args"]["name"] for m in meta} == {
        f"repro:{HOST_TRACK}", f"repro:{SIM_TRACK}"
    }
    assert len(spans) == 2
    for e in spans:
        assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        assert isinstance(e["ts"], float) and isinstance(e["dur"], float)
    by_name = {e["name"]: e for e in spans}
    assert by_name["host-span"]["pid"] == _TRACK_PIDS[HOST_TRACK]
    assert by_name["host-span"]["args"] == {"graph": "g"}
    assert by_name["sim-span"]["pid"] == _TRACK_PIDS[SIM_TRACK]


def test_instrumented_estimate_produces_spans(small_matrix):
    from repro.kernels import make_spmm
    from repro.perf import get_estimate_cache

    get_estimate_cache().clear()
    tracer = Tracer()
    set_tracer(tracer)
    make_spmm("hp-spmm").estimate(small_matrix, 64)
    names = [s.name for s in tracer.spans]
    assert "spmm.estimate" in names
    assert "estimate.compute" in names  # cold call: the miss is traced
    tracer.spans.clear()
    make_spmm("hp-spmm").estimate(small_matrix, 64)
    names = [s.name for s in tracer.spans]
    assert "spmm.estimate" in names
    assert "estimate.compute" not in names  # warm call: hit, no compute
