"""Table V — end-to-end GNN training speedups (DGL-mode and PyG-mode)."""

from repro.bench import run_table5, write_report


def test_table5_end_to_end_training(run_once):
    res = run_once(run_table5)
    report = res.render()
    print("\n" + report)
    write_report("table5", report)

    # HP-SpMM accelerates every model/dataset/hidden combination.
    for row in res.rows:
        assert row[5] > 1.0, row

    # Speedup shrinks as the hidden size grows (paper Section IV-G:
    # "with the increase in hidden sizes, the speedup ratio is getting
    # lower", caused by the K-sensitivity of Section IV-F).
    for framework, model in (
        ("dgl", "gcn"),
        ("pyg", "gcn"),
        ("pyg", "graphsaint"),
    ):
        s32 = res.speedup(framework, model, 32)
        s256 = res.speedup(framework, model, 256)
        assert s32 >= s256 * 0.95, (framework, model, s32, s256)

    # Headline magnitudes: up to ~1.7x at hidden 32 (paper: 1.68-1.72).
    assert res.speedup("pyg", "gcn", 32) > 1.3
