"""HP-SDDMM: Hybrid-Parallel SDDMM (paper Section III-A2, Algorithm 4).

Like HP-SpMM, each warp owns a ``NnzPerWarp`` slice of the hybrid
CSR/COO matrix and stages 32-element sparse tiles into shared memory.
For each staged nonzero ``(r, c)`` the warp loads row ``c`` of
``A2ᵀ`` into registers, multiplies elementwise against row ``r`` of
``A1`` (kept resident in registers) and performs a warp-level reduction;
lane 0 stores the scalar result.  The row-switch procedure here saves
*reads*: the ``A1`` row is reloaded only when the slice moves to a new
row, so consecutive nonzeros of one row reuse it for free.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from ..gpusim import (
    CostParams,
    DeviceSpec,
    WarpWorkload,
    LaunchConfig,
    simulate_launch,
)
from ..tuning import (
    HP_REGISTERS_PER_THREAD,
    HP_SMEM_PER_WARP,
    TaskPartition,
    fixed_partition,
    naive_nnz_per_warp,
    select_partition,
    sparse_vector_width,
    is_candidate_aligned,
)
from .api import (
    SDDMMKernel,
    register_sddmm,
)
from .common import (
    dense_row_alignment,
    estimate_hit_rate,
    per_warp_nnz,
    row_segments_per_slice,
    split_by_hit_rate,
    warp_slice_starts,
)

#: Warp shuffle instructions for a 32-lane tree reduction.
WARP_REDUCE_INSTRS = 5.0


def _hp_sddmm_workload(
    S: HybridMatrix,
    k: int,
    part: TaskPartition,
    device: DeviceSpec,
    *,
    hvma: bool = True,
    hit_rate: float | None = None,
) -> tuple[WarpWorkload, LaunchConfig]:
    """Build the per-warp workload of Algorithm 4 for partition ``part``."""
    nnz = S.nnz
    npw = part.nnz_per_warp
    vw = part.vector_width
    groups = part.num_feature_groups
    starts = warp_slice_starts(nnz, npw)
    slice_nnz = per_warp_nnz(nnz, npw).astype(np.float64)
    segments = row_segments_per_slice(S.row, starts, npw).astype(np.float64)
    tiles = np.ceil(slice_nnz / 32.0)

    feats_per_group = k / groups
    row_sectors = feats_per_group * 4 / device.l2_sector_bytes
    if not (hvma and dense_row_alignment(k, device.l2_sector_bytes)):
        row_sectors += 1.0

    # --- instruction stream --------------------------------------------
    svw = sparse_vector_width(npw) if hvma else 1
    sparse_load_instr = tiles * 3.0 / svw
    smem_read_instr = slice_nnz
    a2_load_instr = slice_nnz * np.ceil(feats_per_group / (32 * vw))
    a1_load_instr = segments * np.ceil(feats_per_group / (32 * vw))
    mul_instr = slice_nnz * np.ceil(feats_per_group / 32.0)
    reduce_instr = slice_nnz * (WARP_REDUCE_INSTRS + max(0, vw - 1))
    store_instr = slice_nnz  # lane-0 scalar store per nonzero
    loop_overhead = slice_nnz * 1.0 + tiles * 2.0
    issue = (
        sparse_load_instr
        + smem_read_instr
        + a2_load_instr
        + a1_load_instr
        + mul_instr
        + reduce_instr
        + store_instr
        + loop_overhead
    )

    # --- memory transactions --------------------------------------------
    sparse_aligned = hvma and is_candidate_aligned(npw, device.l2_sector_bytes)
    # 3 arrays x 4 bytes per element, coalesced; misaligned tile starts
    # touch one extra sector per array per tile.
    sparse_sectors = slice_nnz * 12.0 / device.l2_sector_bytes
    if not sparse_aligned:
        sparse_sectors = sparse_sectors + tiles * 3.0
    sparse_dram = sparse_sectors / groups
    sparse_l2 = sparse_sectors * (groups - 1) / groups

    # A2 rows are gathered per nonzero (column stream → cache model);
    # A1 rows only per row segment and nearly sequential → high locality,
    # modeled through the same footprint estimator on the row stream.
    a2_sectors = slice_nnz * row_sectors
    if hit_rate is None:
        hit_rate = estimate_hit_rate(
            S.col, bytes_per_item=k * 4.0, device=device,
            concurrent_warps=part.num_warps,
        )
    a2_l2, a2_dram = split_by_hit_rate(a2_sectors, hit_rate)
    a1_sectors = segments * row_sectors
    a1_hit = 0.9  # sequential row stream: only cold misses
    a1_l2, a1_dram = split_by_hit_rate(a1_sectors, a1_hit)

    # Output value stores: 32 consecutive scalars per tile → coalesced by
    # the write buffer into 128B of traffic per 32 nonzeros.
    store_sectors = slice_nnz * 4.0 / device.l2_sector_bytes
    atomics = slice_nnz / 32.0  # per-tile store flush, amortized

    l2 = sparse_l2 + a2_l2 + a1_l2
    dram = sparse_dram + a2_dram + a1_dram + store_sectors

    def rep(a: np.ndarray) -> np.ndarray:
        return a if groups == 1 else np.repeat(a, groups)

    work = WarpWorkload(
        issue=rep(issue),
        l2_sectors=rep(l2),
        dram_sectors=rep(dram),
        fma=rep(mul_instr),
        atomics=rep(atomics),
    )
    config = LaunchConfig(
        warps_per_block=part.warps_per_block,
        registers_per_thread=HP_REGISTERS_PER_THREAD,
        shared_mem_per_block=HP_SMEM_PER_WARP * part.warps_per_block,
    )
    return work, config


@register_sddmm
class HPSDDMM(SDDMMKernel):
    """The paper's HP-SDDMM with DTP and HVMA enabled by default."""

    name = "hp-sddmm"

    def __init__(
        self,
        *,
        use_dtp: bool = True,
        use_hvma: bool = True,
        nnz_per_warp: int | None = None,
        warps_per_block: int = 8,
        alpha: float = 4.0,
    ) -> None:
        self.use_dtp = use_dtp
        self.use_hvma = use_hvma
        self.nnz_per_warp = nnz_per_warp
        self.warps_per_block = warps_per_block
        self.alpha = alpha

    def partition(self, S: HybridMatrix, k: int, device: DeviceSpec) -> TaskPartition:
        """Resolve the task partition this kernel would launch with."""
        if self.nnz_per_warp is not None:
            return fixed_partition(
                S.nnz,
                k,
                self.nnz_per_warp,
                vector_width=None if self.use_hvma else 1,
                warps_per_block=self.warps_per_block,
                device=device,
            )
        if self.use_dtp:
            part = select_partition(
                S.nnz,
                k,
                device,
                warps_per_block=self.warps_per_block,
                alpha=self.alpha,
            )
            if not self.use_hvma:
                part = fixed_partition(
                    S.nnz,
                    k,
                    part.nnz_per_warp,
                    vector_width=1,
                    warps_per_block=self.warps_per_block,
                    device=device,
                )
            return part
        npw = naive_nnz_per_warp(S.nnz, S.shape[0])
        return fixed_partition(
            S.nnz,
            k,
            npw,
            vector_width=None if self.use_hvma else 1,
            warps_per_block=self.warps_per_block,
            device=device,
        )

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        part = self.partition(S, k, device)
        work, config = _hp_sddmm_workload(S, k, part, device, hvma=self.use_hvma)
        return simulate_launch(device, work, config, cost), 0.0
