"""GraphSAGE layers and model."""

import numpy as np
import pytest

from repro.gnn import (
    Adam,
    GraphSAGE,
    SAGEConv,
    Tensor,
    TimingContext,
    row_normalized,
)
from repro.graphs import community_graph


@pytest.fixture(scope="module")
def graph():
    g = community_graph(500, 4000, num_communities=6, seed=31)
    return g, row_normalized(g)


def test_row_normalized_rows_average(graph):
    g, operand = graph
    x = np.ones((g.shape[1], 3), dtype=np.float32)
    out = operand.csr @ x
    # Mean aggregation of all-ones features is exactly 1 per nonempty row.
    nonempty = g.row_degrees() > 0
    np.testing.assert_allclose(out[nonempty], 1.0, rtol=1e-5)


def test_sageconv_combines_self_and_neighbors(graph):
    g, operand = graph
    rng = np.random.default_rng(0)
    conv = SAGEConv(8, 12, rng)
    x = Tensor(rng.standard_normal((g.shape[0], 8)).astype(np.float32))
    out = conv(operand, x)
    assert out.shape == (g.shape[0], 12)
    # Two linears -> four parameters.
    assert len(conv.parameters()) == 4


def test_sageconv_records_one_spmm(graph):
    _, operand = graph
    rng = np.random.default_rng(1)
    conv = SAGEConv(8, 8, rng)
    timing = TimingContext()
    conv(operand, Tensor(np.zeros((operand.num_nodes, 8), np.float32)), timing)
    assert timing.num_sparse_ops == 1
    assert timing.num_dense_ops == 6  # two Linear layers x 3 records


def test_graphsage_trains(graph):
    g, operand = graph
    rng = np.random.default_rng(2)
    n = g.shape[0]
    x = Tensor(rng.standard_normal((n, 16)).astype(np.float32))
    labels = rng.integers(0, 5, n)
    model = GraphSAGE(16, 16, 5, num_layers=2, seed=0)
    opt = Adam(model.parameters(), lr=0.02)
    losses = []
    for _ in range(10):
        model.zero_grad()
        loss = model.loss(operand, x, labels)
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    assert losses[-1] < losses[0]


def test_graphsage_hp_kernel_is_faster(graph):
    g, operand = graph
    rng = np.random.default_rng(3)
    x = Tensor(rng.standard_normal((g.shape[0], 16)).astype(np.float32))
    model = GraphSAGE(16, 16, 4, num_layers=3, seed=1)
    times = {}
    for kern in ("hp-spmm", "row-split"):
        timing = TimingContext(spmm_kernel=kern)
        model(operand, x, timing)
        times[kern] = timing.sparse_s
    assert times["hp-spmm"] < times["row-split"]


def test_graphsage_validates_depth():
    with pytest.raises(ValueError):
        GraphSAGE(8, 8, 4, num_layers=1)
