"""Crossover/ranking maps: *where* each kernel wins, not just whether.

Pure functions over plain row dicts (``mean_degree``, ``skew``,
``winner``, ``margin``, per-kernel records), so the aggregation is
directly testable on hand-built fixtures with known winner boundaries
— no graphs or simulator involved.
"""

from __future__ import annotations

import math

#: Default region resolution of the crossover map.
DEFAULT_DEGREE_BUCKETS = 4
DEFAULT_SKEW_BUCKETS = 4


def _log_edges(lo: float, hi: float, buckets: int) -> list[float]:
    """``buckets + 1`` log-spaced edges spanning ``[lo, hi]``."""
    llo, lhi = math.log(lo), math.log(hi)
    return [
        math.exp(llo + (lhi - llo) * i / buckets) for i in range(buckets + 1)
    ]


def _bucket_of(value: float, edges: list[float]) -> int:
    """Index of the half-open bucket containing ``value`` (clamped)."""
    for i in range(len(edges) - 2):
        if value < edges[i + 1]:
            return i
    return len(edges) - 2


def crossover_map(
    rows: list[dict],
    *,
    degree_range: tuple[float, float],
    degree_buckets: int = DEFAULT_DEGREE_BUCKETS,
    skew_buckets: int = DEFAULT_SKEW_BUCKETS,
) -> dict:
    """Bucket rows into a density x skew grid and pick per-region winners.

    Density buckets are log-spaced over ``degree_range`` (matching the
    sampler's log-uniform axis, so sampled universes fill regions
    evenly); skew buckets are linear over [0, 1].  Each region reports
    its winner tally, the top kernel (ties broken lexicographically so
    the map is deterministic), the top kernel's share, and the mean win
    margin of the configs it holds.
    """
    deg_lo, deg_hi = degree_range
    if not 0 < deg_lo < deg_hi:
        raise ValueError(f"bad degree_range {degree_range!r}")
    if degree_buckets <= 0 or skew_buckets <= 0:
        raise ValueError("bucket counts must be positive")
    degree_edges = _log_edges(deg_lo, deg_hi, degree_buckets)
    skew_edges = [i / skew_buckets for i in range(skew_buckets + 1)]

    cells: dict[tuple[int, int], list[dict]] = {}
    for row in rows:
        di = _bucket_of(row["mean_degree"], degree_edges)
        si = _bucket_of(row["skew"], skew_edges)
        cells.setdefault((di, si), []).append(row)

    regions = []
    for di in range(degree_buckets):
        for si in range(skew_buckets):
            members = cells.get((di, si), [])
            winners: dict[str, int] = {}
            margins = []
            for row in members:
                if row["winner"] is not None:
                    winners[row["winner"]] = winners.get(row["winner"], 0) + 1
                if row.get("margin") is not None:
                    margins.append(row["margin"])
            top = None
            top_share = 0.0
            if winners:
                # Highest count first, then name, for a stable label.
                top = min(winners, key=lambda kn: (-winners[kn], kn))
                top_share = winners[top] / sum(winners.values())
            regions.append(
                {
                    "id": f"d{di}s{si}",
                    "degree_lo": degree_edges[di],
                    "degree_hi": degree_edges[di + 1],
                    "skew_lo": skew_edges[si],
                    "skew_hi": skew_edges[si + 1],
                    "configs": len(members),
                    "winners": dict(sorted(winners.items())),
                    "top": top,
                    "top_share": top_share,
                    "mean_margin": (
                        sum(margins) / len(margins) if margins else None
                    ),
                }
            )
    return {
        "degree_buckets": degree_buckets,
        "skew_buckets": skew_buckets,
        "degree_edges": degree_edges,
        "skew_edges": skew_edges,
        "regions": regions,
    }


def kernel_ranking(rows: list[dict], kernels: list[str]) -> list[dict]:
    """Global ranking table: wins, win share, geomean relative slowdown.

    ``geomean_rel`` is each kernel's geometric-mean total time relative
    to the per-config winner over the configs where both completed —
    1.0 means "always the winner"; it orders kernels that rarely win
    outright by how close they stay to the frontier.
    """
    wins = {kernel: 0 for kernel in kernels}
    log_rel = {kernel: [] for kernel in kernels}
    decided = 0
    for row in rows:
        winner = row["winner"]
        if winner is None:
            continue
        decided += 1
        wins[winner] = wins.get(winner, 0) + 1
        best = row["kernels"][winner]["total_time_s"]
        if not best or best <= 0:
            continue
        for kernel, rec in row["kernels"].items():
            if rec["status"] == "ok" and kernel in log_rel:
                log_rel[kernel].append(
                    math.log(rec["total_time_s"] / best)
                )
    table = []
    for kernel in kernels:
        rel = (
            math.exp(sum(log_rel[kernel]) / len(log_rel[kernel]))
            if log_rel[kernel]
            else None
        )
        table.append(
            {
                "kernel": kernel,
                "wins": wins.get(kernel, 0),
                "win_share": wins.get(kernel, 0) / decided if decided else 0.0,
                "geomean_rel": rel,
            }
        )
    table.sort(
        key=lambda r: (
            -r["wins"],
            r["geomean_rel"] if r["geomean_rel"] is not None else math.inf,
            r["kernel"],
        )
    )
    return table
