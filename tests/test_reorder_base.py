"""Reorderer plumbing: permutation validation, identity, degree sort."""

import numpy as np
import pytest

from repro.formats import HybridMatrix
from repro.reorder import (
    REORDERERS,
    DegreeSortReorderer,
    IdentityReorderer,
    validate_permutation,
)


def test_validate_permutation_accepts_valid():
    validate_permutation(np.array([2, 0, 1]), 3)


def test_validate_permutation_rejects_bad():
    with pytest.raises(ValueError):
        validate_permutation(np.array([0, 0, 1]), 3)
    with pytest.raises(ValueError):
        validate_permutation(np.array([0, 1]), 3)


def test_identity_reorderer(small_matrix):
    res = IdentityReorderer().apply(small_matrix)
    np.testing.assert_allclose(res.matrix.to_dense(), small_matrix.to_dense())
    assert res.reorderer == "identity"
    assert res.elapsed_s >= 0


def test_degree_sort_descending(small_matrix):
    res = DegreeSortReorderer().apply(small_matrix)
    deg = res.matrix.row_degrees()
    assert np.all(np.diff(deg) <= 0)


def test_apply_requires_square():
    rect = HybridMatrix.from_arrays([0], [1], None, shape=(2, 3))
    with pytest.raises(ValueError):
        IdentityReorderer().apply(rect)


def test_reorder_preserves_matrix_content(small_matrix):
    # A symmetric permutation never changes the multiset of values.
    for name, cls in REORDERERS.items():
        if name == "pair-merge":
            continue  # quadratic; covered separately on a tiny graph
        res = cls().apply(small_matrix)
        np.testing.assert_allclose(
            np.sort(res.matrix.val), np.sort(small_matrix.val)
        )
        assert res.matrix.nnz == small_matrix.nnz


def test_registry_contents():
    assert {"identity", "degree-sort", "gcr-louvain", "lsh-jaccard",
            "pair-merge", "rcm"} == set(REORDERERS)
