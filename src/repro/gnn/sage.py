"""GraphSAGE layers — the mean-aggregator model behind neighbor sampling.

The paper's graph-sampling dataset is collected from training runs of
sampling-based models, GraphSAGE among them (Section IV-A1).  SAGEConv
aggregates neighbor features with a row-normalized SpMM (``D^-1 A X``)
and combines them with a separate self transform:

    H = ReLU( X W_self + (D^-1 A) X W_neigh )

Both the aggregation and its backward run through the configured SpMM
kernel, so GraphSAGE training benefits from HP-SpMM exactly like GCN.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from .autograd import Tensor, add, cross_entropy, relu
from .layers import Linear, Module
from .sparse_ops import GraphOperand, spmm
from .timing import TimingContext


def row_normalized(S: HybridMatrix) -> GraphOperand:
    """Mean-aggregation operand: values scaled to ``1 / out_degree``."""
    deg = np.bincount(S.row, minlength=S.shape[0]).astype(np.float32)
    scale = 1.0 / np.maximum(deg, 1.0)
    return GraphOperand(
        HybridMatrix(
            row=S.row,
            col=S.col,
            val=(S.val * scale[S.row]).astype(np.float32),
            shape=S.shape,
        )
    )


class SAGEConv(Module):
    """GraphSAGE convolution with the mean aggregator."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        activation: bool = True,
    ):
        super().__init__()
        self.self_linear = Linear(in_features, out_features, rng)
        self.neigh_linear = Linear(in_features, out_features, rng)
        self.activation = activation

    def __call__(
        self,
        graph: GraphOperand,
        x: Tensor,
        timing: TimingContext | None = None,
    ) -> Tensor:
        h_self = self.self_linear(x, timing)
        h_neigh = self.neigh_linear(spmm(graph, x, timing), timing)
        out = add(h_self, h_neigh)
        if self.activation:
            if timing is not None:
                timing.record_elementwise(out.data.size)
            out = relu(out)
        return out


class GraphSAGE(Module):
    """A stack of SAGEConv layers for node classification."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int,
        *,
        seed: int = 0,
    ):
        super().__init__()
        if num_layers < 2:
            raise ValueError("GraphSAGE needs at least 2 layers")
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.layers = [
            SAGEConv(dims[i], dims[i + 1], rng,
                     activation=(i < num_layers - 1))
            for i in range(num_layers)
        ]

    def __call__(
        self,
        graph: GraphOperand,
        x: Tensor,
        timing: TimingContext | None = None,
    ) -> Tensor:
        h = x
        for layer in self.layers:
            h = layer(graph, h, timing)
        return h

    def loss(
        self,
        graph: GraphOperand,
        x: Tensor,
        labels: np.ndarray,
        timing: TimingContext | None = None,
    ) -> Tensor:
        logits = self(graph, x, timing)
        if timing is not None:
            timing.record_elementwise(logits.data.size, num_arrays=3)
        return cross_entropy(logits, labels)
