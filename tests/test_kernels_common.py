"""Cost-model helpers: warp slicing, row segments, hit-rate splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import TESLA_V100
from repro.kernels.common import (
    dense_row_alignment,
    estimate_hit_rate,
    output_write_sectors,
    per_warp_nnz,
    row_segments_per_slice,
    split_by_hit_rate,
    warp_slice_starts,
)


def test_warp_slice_starts():
    np.testing.assert_array_equal(warp_slice_starts(100, 32), [0, 32, 64, 96])
    np.testing.assert_array_equal(warp_slice_starts(96, 32), [0, 32, 64])
    assert warp_slice_starts(0, 32).size == 0
    with pytest.raises(ValueError):
        warp_slice_starts(10, 0)


def test_per_warp_nnz():
    np.testing.assert_array_equal(per_warp_nnz(100, 32), [32, 32, 32, 4])
    assert per_warp_nnz(0, 8).size == 0
    assert int(per_warp_nnz(100, 32).sum()) == 100


def test_row_segments_per_slice_basic():
    # rows: 0 0 0 1 1 2 | slices of 3: [0,0,0] -> 1 segment, [1,1,2] -> 2.
    row = np.array([0, 0, 0, 1, 1, 2])
    starts = warp_slice_starts(6, 3)
    np.testing.assert_array_equal(
        row_segments_per_slice(row, starts, 3), [1, 2]
    )


def test_row_segments_boundary_not_counted():
    # A row change exactly at a slice boundary is not an internal switch.
    row = np.array([0, 0, 1, 1])
    starts = warp_slice_starts(4, 2)
    np.testing.assert_array_equal(
        row_segments_per_slice(row, starts, 2), [1, 1]
    )


def test_row_segments_empty():
    assert row_segments_per_slice(np.array([]), np.array([], dtype=np.int64), 4).size == 0


@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=200),
    st.integers(1, 64),
)
@settings(max_examples=60, deadline=None)
def test_row_segments_matches_naive(rows, npw):
    row = np.sort(np.array(rows))
    starts = warp_slice_starts(row.size, npw)
    got = row_segments_per_slice(row, starts, npw)
    for w, s in enumerate(starts):
        chunk = row[s : s + npw]
        expected = np.unique(chunk).size
        # Distinct rows == segments because rows are sorted.
        assert got[w] == expected
    # Total segments >= total distinct rows.
    assert got.sum() >= np.unique(row).size


def test_split_by_hit_rate():
    sectors = np.array([10.0, 20.0])
    l2, dram = split_by_hit_rate(sectors, 0.75)
    np.testing.assert_allclose(l2, [7.5, 15.0])
    np.testing.assert_allclose(dram, [2.5, 5.0])
    np.testing.assert_allclose(l2 + dram, sectors)


def test_split_by_hit_rate_clips():
    sectors = np.array([4.0])
    l2, dram = split_by_hit_rate(sectors, 1.7)
    np.testing.assert_allclose(dram, 0.0)


def test_estimate_hit_rate_empty():
    assert estimate_hit_rate(np.array([]), 256.0, TESLA_V100) == 0.0


def test_estimate_hit_rate_hot_stream():
    stream = np.zeros(10_000, dtype=np.int64)
    assert estimate_hit_rate(stream, 256.0, TESLA_V100) > 0.95


def test_estimate_hit_rate_memoized():
    rng = np.random.default_rng(0)
    stream = rng.integers(0, 100_000, size=50_000)
    a = estimate_hit_rate(stream, 256.0, TESLA_V100)
    b = estimate_hit_rate(stream, 256.0, TESLA_V100)  # cached path
    assert a == b


def test_alignment_and_write_sectors():
    assert dense_row_alignment(64)
    assert dense_row_alignment(8)
    assert not dense_row_alignment(7)
    assert output_write_sectors(64) == 8
    assert output_write_sectors(7) == 1


def test_row_segments_rejects_empty_row_with_slices():
    starts = np.array([0, 4], dtype=np.int64)
    with pytest.raises(ValueError, match="row array is empty"):
        row_segments_per_slice(np.array([], dtype=np.int64), starts, 4)


def test_row_segments_rejects_unsorted_row():
    row = np.array([0, 2, 1, 3], dtype=np.int64)
    starts = warp_slice_starts(4, 2)
    with pytest.raises(ValueError, match="non-decreasing") as exc:
        row_segments_per_slice(row, starts, 2)
    # The message names the offending index for fast diagnosis.
    assert "row[1]=2" in str(exc.value)
