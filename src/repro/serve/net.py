"""Socket front end for the estimation server.

Wire format: length-prefixed JSON frames over TCP — a 4-byte big-endian
payload length followed by a UTF-8 JSON object.  Frame ``type``s:

===========  ======================================================
``req``      client -> server: one request (``id``, ``request``)
``reqs``     client -> server: an atomic multi-request submission
             (``ids``, ``requests``); the whole list enters the
             server queue under one lock hold, so it micro-batches
             exactly like the same list replayed in-process
``resp``     server -> client: one answer (``id``, ``response``),
             **streamed as its micro-batch resolves** — a long replay
             sees results flow back batch by batch, not in one burst
             when the connection drains
``stats``    client -> server -> client: server counters, the
             ``serve.request_latency`` summary and live queue depth
``ping`` /   liveness probe (CI readiness checks)
``pong``
``error``    server -> client: the connection's frames stopped making
             sense (oversized frame, bad JSON, unknown type); the
             connection closes after this frame
===========  ======================================================

Backpressure: the front end never blocks the batching worker.  Each
connection owns a writer thread draining an unbounded outbound queue;
``_Pending.on_done`` callbacks only enqueue.  Admission is bounded by a
queue-depth watermark (``REPRO_SERVE_QUEUE_HIGH``): a submission that
would push the server queue past it is **load-shed** — answered
immediately with ``STATUS_SHED`` and a Retry-After-style hint scaled
from the server's predicted per-request cost — instead of growing the
queue without bound.  :class:`ServeClient` surfaces the hint so clients
can back off and retry.

Sharding: a :class:`~repro.serve.router.ShardRouter` passed to the
serve CLI pins every engine work unit to the worker that owns its
graph's structural fingerprint (``--workers N`` sharded serving), so
each shard accumulates its own graphs' estimate cache and cost priors.
"""

from __future__ import annotations

import json
import queue
import socket
import struct
import threading
import time

from ..config import env_int, env_str
from ..obs import METRICS, get_histogram, get_tracer, observe_latency
from ..obs.tracer import HOST_TRACK
from .request import (
    STATUS_SHED,
    STATUS_ERROR,
    EstimateRequest,
    EstimateResponse,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from .server import EstimationServer

_HEADER = struct.Struct(">I")

#: Writer-queue sentinel: flush nothing more, exit the writer thread.
_CLOSE = object()


class ProtocolError(Exception):
    """The peer sent bytes that are not a valid frame."""


def default_host() -> str:
    return env_str("REPRO_SERVE_HOST", "127.0.0.1") or "127.0.0.1"


def default_port() -> int:
    return env_int("REPRO_SERVE_PORT", 0)


def default_max_frame() -> int:
    return env_int("REPRO_SERVE_MAX_FRAME", 8 * 1024 * 1024)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def send_frame(sock: socket.socket, payload: dict) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame: int) -> dict | None:
    """Read one frame; None on clean EOF before a header byte."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame length {length} exceeds max_frame {max_frame}"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        frame = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from None
    if not isinstance(frame, dict) or "type" not in frame:
        raise ProtocolError(f"frame must be an object with a type: {frame!r}")
    return frame


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------

class SocketFrontEnd:
    """TCP front end streaming :class:`EstimationServer` answers.

    One accept thread plus, per connection, a reader thread (this
    class's ``_serve_conn``) and a writer thread draining the
    connection's outbound queue.  Responses are enqueued from the
    batching worker's ``on_done`` callbacks the moment their
    micro-batch resolves, so the worker never waits on a socket.
    """

    def __init__(
        self,
        server: EstimationServer,
        host: str | None = None,
        port: int | None = None,
        *,
        queue_high: int | None = None,
        accept_backlog: int | None = None,
        max_frame: int | None = None,
    ) -> None:
        self.server = server
        self.host = default_host() if host is None else host
        self.port = default_port() if port is None else port
        self.queue_high = (
            env_int("REPRO_SERVE_QUEUE_HIGH", 512)
            if queue_high is None else queue_high
        )
        self.accept_backlog = (
            env_int("REPRO_SERVE_ACCEPT_BACKLOG", 128)
            if accept_backlog is None else accept_backlog
        )
        self.max_frame = (
            default_max_frame() if max_frame is None else max_frame
        )
        if self.queue_high < 1:
            raise ValueError(f"queue_high must be >= 1, got {self.queue_high}")
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closing = False
        self._lock = threading.Lock()      # guards the connection registry
        self._conns: dict[int, tuple] = {}  # id -> (socket, thread)
        self._conn_seq = 0

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port resolved when ``port=0``."""
        if self._listener is None:
            raise RuntimeError("front end is not started")
        addr = self._listener.getsockname()
        return (addr[0], addr[1])

    def start(self) -> "SocketFrontEnd":
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(self.accept_backlog)
        except OSError:
            listener.close()
            raise
        self._closing = False
        self._listener = listener
        self.server.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and every live connection (idempotent)."""
        self._closing = True
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                # close() alone does not wake a thread blocked in accept()
                # on Linux; shutdown() does (accept fails with EINVAL).
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for sock, thread in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
            thread.join(timeout=5)

    def __enter__(self) -> "SocketFrontEnd":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept / connection loop ---------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._closing and listener is not None:
            try:
                sock, _addr = listener.accept()
            except OSError:  # listener closed by stop()
                return
            with self._lock:
                if self._closing:
                    sock.close()
                    return
                self._conn_seq += 1
                conn_id = self._conn_seq
                thread = threading.Thread(
                    target=self._serve_conn, args=(sock, conn_id),
                    name=f"repro-serve-conn-{conn_id}", daemon=True,
                )
                self._conns[conn_id] = (sock, thread)
            METRICS.inc("serve.conn_opened")
            METRICS.record_max("serve.conn_active_max", len(self._conns))
            thread.start()

    def _serve_conn(self, sock: socket.socket, conn_id: int) -> None:
        opened_mono = time.monotonic()  # lint: allow(wallclock) connection lifetime is a measured surface
        tracer = get_tracer()
        opened_us = tracer.now_us() if tracer is not None else 0.0
        outq: queue.Queue = queue.Queue()
        writer = threading.Thread(
            target=self._writer_loop, args=(sock, outq),
            name=f"repro-serve-writer-{conn_id}", daemon=True,
        )
        writer.start()
        frames = 0
        try:
            while not self._closing:
                frame = recv_frame(sock, self.max_frame)
                if frame is None:
                    break
                frames += 1
                self._handle_frame(frame, outq)
        except ProtocolError as exc:
            METRICS.inc("serve.protocol_errors")
            outq.put({"type": "error", "error": str(exc)})
        except OSError:
            pass  # peer vanished; nothing left to answer
        finally:
            outq.put(_CLOSE)
            writer.join(timeout=5)
            sock.close()
            with self._lock:
                self._conns.pop(conn_id, None)
            METRICS.inc("serve.conn_closed")
            lifetime_s = time.monotonic() - opened_mono  # lint: allow(wallclock) connection lifetime is a measured surface
            observe_latency("serve.conn_lifetime", lifetime_s)
            if tracer is not None:
                tracer.emit(
                    "serve.connection",
                    ts_us=opened_us,
                    dur_us=lifetime_s * 1e6,
                    cat="serve",
                    track=HOST_TRACK,
                    conn=conn_id,
                    frames=frames,
                )

    def _writer_loop(self, sock: socket.socket, outq: queue.Queue) -> None:
        while True:
            frame = outq.get()
            if frame is _CLOSE:
                return
            try:
                send_frame(sock, frame)
            except OSError:
                return  # peer gone; the reader side tears the conn down

    # -- frame dispatch -------------------------------------------------
    def _handle_frame(self, frame: dict, outq: queue.Queue) -> None:
        kind = frame["type"]
        if kind == "ping":
            outq.put({"type": "pong"})
            return
        if kind == "stats":
            outq.put({
                "type": "stats",
                "stats": self.server.stats(),
                "latency_s": get_histogram("serve.request_latency").summary(),
                "queue_depth": self.server.queue_depth,
            })
            return
        if kind == "req":
            ids = [frame.get("id")]
            payloads = [frame.get("request")]
            atomic = False
        elif kind == "reqs":
            ids = frame.get("ids") or []
            payloads = frame.get("requests") or []
            if len(ids) != len(payloads) or not ids:
                raise ProtocolError(
                    f"reqs frame needs matching non-empty ids/requests, "
                    f"got {len(ids)}/{len(payloads)}"
                )
            atomic = True
        else:
            raise ProtocolError(f"unknown frame type {kind!r}")

        try:
            requests = [request_from_wire(p) for p in payloads]
        except ValueError as exc:
            # A malformed request fails only itself, not the connection.
            METRICS.inc("serve.net_bad_requests")
            outq.put({"type": "error", "ids": ids, "error": str(exc)})
            return
        METRICS.inc("serve.net_requests", len(requests))

        depth = self.server.queue_depth
        if depth + len(requests) > self.queue_high:
            self._shed(ids, requests, depth, outq)
            return
        try:
            if atomic:
                pendings = self.server.submit_atomic(requests)
            else:
                pendings = [self.server.submit(r) for r in requests]
        except RuntimeError as exc:  # server stopped under us
            for rid, req in zip(ids, requests):
                self._enqueue_response(
                    outq, rid,
                    EstimateResponse(
                        request=req, status=STATUS_ERROR, error=str(exc)
                    ),
                )
            return
        for rid, pending in zip(ids, pendings):
            pending.on_done(
                lambda p, _rid=rid: self._enqueue_response(
                    outq, _rid, p.response
                )
            )

    def _shed(
        self,
        ids: list,
        requests: list[EstimateRequest],
        depth: int,
        outq: queue.Queue,
    ) -> None:
        """Refuse a submission that would breach the queue watermark.

        The retry hint is the predicted time for the queue to drain back
        under the watermark: excess depth times the server's predicted
        per-request cost (cost-prior backed, EWMA cold-start).
        """
        n = len(requests)
        self.server.note_shed(n)
        excess = max(1, depth + n - self.queue_high)
        retry_after_s = excess * max(
            self.server.predicted_cost_s(requests[0].graph), 1e-4
        )
        for rid, req in zip(ids, requests):
            self._enqueue_response(
                outq, rid,
                EstimateResponse(
                    request=req, status=STATUS_SHED,
                    error=(
                        f"queue depth {depth}+{n} exceeds watermark "
                        f"{self.queue_high}"
                    ),
                    retry_after_s=retry_after_s,
                ),
            )

    def _enqueue_response(
        self, outq: queue.Queue, rid, response: EstimateResponse
    ) -> None:
        METRICS.inc("serve.net_responses")
        outq.put({
            "type": "resp", "id": rid,
            "response": response_to_wire(response),
        })


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------

class _RemoteTicket:
    """Client-side mirror of a server pending: one in-flight request."""

    __slots__ = ("request", "submit_mono", "latency_s", "event", "response",
                 "failure")

    def __init__(self, request: EstimateRequest) -> None:
        self.request = request
        self.submit_mono = time.monotonic()  # lint: allow(wallclock) client-observed latency is a measured surface
        self.latency_s = 0.0
        self.event = threading.Event()
        self.response: EstimateResponse | None = None
        self.failure: Exception | None = None

    def result(self, timeout: float | None = None) -> EstimateResponse:
        if not self.event.wait(timeout):
            raise TimeoutError(
                f"no response within {timeout}s for {self.request}"
            )
        if self.failure is not None:
            raise self.failure
        assert self.response is not None
        return self.response


class ServeClient:
    """Blocking client for the socket front end.

    A background reader thread dispatches streamed ``resp`` frames to
    their tickets, so callers can keep submitting while earlier answers
    arrive (the open-loop drivers depend on this).  ``retry_for_s``
    retries the initial connect — CI readiness, where the server
    process is still binding its port.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        *,
        retry_for_s: float = 0.0,
        connect_timeout_s: float = 5.0,
        max_frame: int | None = None,
    ) -> None:
        self.host = default_host() if host is None else host
        self.port = default_port() if port is None else port
        self.max_frame = (
            default_max_frame() if max_frame is None else max_frame
        )
        self._sock = self._connect(retry_for_s, connect_timeout_s)
        self._send_lock = threading.Lock()
        self._table_lock = threading.Lock()
        self._tickets: dict[int, _RemoteTicket] = {}
        self._seq = 0
        self._stats_frames: queue.Queue = queue.Queue()
        self._pong_frames: queue.Queue = queue.Queue()
        self._closed = False
        self._reader = threading.Thread(
            target=self._reader_loop, name="repro-serve-client", daemon=True
        )
        self._reader.start()

    def _connect(
        self, retry_for_s: float, connect_timeout_s: float
    ) -> socket.socket:
        deadline = time.monotonic() + retry_for_s  # lint: allow(wallclock) connect-retry window against a still-binding server
        while True:
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=connect_timeout_s
                )
            except OSError:
                if time.monotonic() >= deadline:  # lint: allow(wallclock) connect-retry window against a still-binding server
                    raise
                time.sleep(0.05)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reader ---------------------------------------------------------
    def _reader_loop(self) -> None:
        failure: Exception | None = None
        try:
            sock = self._sock
            sock.settimeout(None)
            while True:
                frame = recv_frame(sock, self.max_frame)
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "resp":
                    self._dispatch_response(frame)
                elif kind == "stats":
                    self._stats_frames.put(frame)
                elif kind == "pong":
                    self._pong_frames.put(frame)
                elif kind == "error":
                    failure = ProtocolError(
                        frame.get("error") or "server protocol error"
                    )
                    break
        except (OSError, ProtocolError) as exc:
            failure = exc if not self._closed else None
        finally:
            if failure is None:
                failure = ConnectionError(
                    "connection closed with requests outstanding"
                )
            with self._table_lock:
                stranded = list(self._tickets.values())
                self._tickets.clear()
            for t in stranded:
                t.failure = failure
                t.event.set()

    def _dispatch_response(self, frame: dict) -> None:
        with self._table_lock:
            ticket = self._tickets.pop(frame.get("id"), None)
        if ticket is None:
            return  # duplicate or unknown id: drop
        response = response_from_wire(frame["response"])
        ticket.latency_s = time.monotonic() - ticket.submit_mono  # lint: allow(wallclock) client-observed latency is a measured surface
        ticket.response = response
        ticket.event.set()

    # -- submission -----------------------------------------------------
    def _register(self, requests: list[EstimateRequest]) -> tuple:
        with self._table_lock:
            base = self._seq
            self._seq += len(requests)
            tickets = [_RemoteTicket(r) for r in requests]
            for i, t in enumerate(tickets):
                self._tickets[base + i] = t
        return base, tickets

    def submit(self, request: EstimateRequest) -> _RemoteTicket:
        base, (ticket,) = self._register([request])
        with self._send_lock:
            send_frame(self._sock, {
                "type": "req", "id": base,
                "request": request_to_wire(request),
            })
        return ticket

    def submit_atomic(self, requests) -> list[_RemoteTicket]:
        """Submit a list that micro-batches like an in-process replay."""
        requests = list(requests)
        base, tickets = self._register(requests)
        with self._send_lock:
            send_frame(self._sock, {
                "type": "reqs",
                "ids": list(range(base, base + len(requests))),
                "requests": [request_to_wire(r) for r in requests],
            })
        return tickets

    def estimate(
        self, request: EstimateRequest, timeout: float | None = None
    ) -> EstimateResponse:
        return self.submit(request).result(timeout)

    # -- control frames -------------------------------------------------
    def stats(self, timeout: float = 10.0) -> dict:
        """Server stats + latency summary + live queue depth."""
        with self._send_lock:
            send_frame(self._sock, {"type": "stats"})
        frame = self._stats_frames.get(timeout=timeout)
        return {
            "stats": frame["stats"],
            "latency_s": frame["latency_s"],
            "queue_depth": frame["queue_depth"],
        }

    def ping(self, timeout: float = 5.0) -> bool:
        with self._send_lock:
            send_frame(self._sock, {"type": "ping"})
        try:
            self._pong_frames.get(timeout=timeout)
            return True
        except queue.Empty:
            return False


# ----------------------------------------------------------------------
# Remote workload driver
# ----------------------------------------------------------------------

def _percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(
        0, min(len(sorted_values) - 1,
               int(len(sorted_values) * pct / 100.0 + 0.5) - 1)
    )
    return sorted_values[rank]


def run_workload_remote(
    spec,
    host: str | None = None,
    port: int | None = None,
    *,
    retry_for_s: float = 10.0,
) -> dict:
    """Drive a workload spec against a remote front end; report dict.

    Same ``repro.serve.report/v1`` schema as the in-process
    :func:`~repro.serve.workload.run_workload`: the server's stats and
    latency summary come back over a ``stats`` frame, and a
    ``client_latency_s`` section adds the client-observed end-to-end
    numbers (submit -> streamed response, network included).
    """
    import random

    from .workload import build_report, generate_requests

    requests = generate_requests(spec)
    with ServeClient(host, port, retry_for_s=retry_for_s) as client:
        if spec.mode == "replay":
            tickets = client.submit_atomic(requests)
            responses = [t.result(spec.result_timeout_s) for t in tickets]
        elif spec.mode == "closed":
            shares = [requests[c::spec.clients] for c in range(spec.clients)]
            results: list[list] = [[] for _ in range(spec.clients)]
            tickets = []

            def drive(c: int) -> None:
                for req in shares[c]:
                    t = client.submit(req)
                    tickets.append(t)
                    results[c].append(t.result(spec.result_timeout_s))

            threads = [
                threading.Thread(target=drive, args=(c,), name=f"client-{c}")
                for c in range(spec.clients) if shares[c]
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            responses = [None] * len(requests)
            for c, share in enumerate(results):
                responses[c::spec.clients] = share
        else:  # open loop
            rng = random.Random(spec.seed + 1)
            tickets = []
            for i, req in enumerate(requests):
                tickets.append(client.submit(req))
                if i + 1 < len(requests):  # no trailing inter-arrival gap
                    time.sleep(rng.expovariate(spec.arrival_rate_hz))
            responses = [t.result(spec.result_timeout_s) for t in tickets]
        remote = client.stats()

    report = build_report(
        spec, None, responses,
        stats=remote["stats"], latency=remote["latency_s"],
    )
    lat = sorted(t.latency_s for t in tickets)
    report["client_latency_s"] = {
        "count": len(lat),
        "p50": _percentile(lat, 50),
        "p95": _percentile(lat, 95),
        "p99": _percentile(lat, 99),
        "max": lat[-1] if lat else 0.0,
    }
    return report
