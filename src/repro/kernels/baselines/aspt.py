"""ASpT baseline (Hong et al., PPoPP'19) — adaptive sparse tiling.

ASpT preprocesses the matrix into row panels, reorders columns inside
each panel, and splits nonzeros into a *dense* part (columns with enough
nonzeros in the panel to profit from shared-memory staging of the
corresponding operand rows) and a *sparse* remainder handled like
row-split.  The dense part enjoys near-perfect operand reuse; the cost is
a heavy preprocessing pass that dynamic GNN computing cannot amortize
(paper Table IV).
"""

from __future__ import annotations

import numpy as np

from ...gpusim import (
    CostParams,
    DeviceSpec,
    LaunchConfig,
    WarpWorkload,
    simulate_launch,
)
from ...formats import HybridMatrix
from ..api import SpMMKernel, register_spmm
from ..common import estimate_hit_rate, split_by_hit_rate
from ..preproc import DEFAULT_HOST, HostCostParams, aspt_preprocess_s


def dense_fraction(
    S: HybridMatrix, panel_rows: int = 64, threshold: int = 4
) -> float:
    """Fraction of nonzeros ASpT's analysis assigns to the dense part.

    A column belongs to a panel's dense part when it holds at least
    ``threshold`` nonzeros within the panel (so staging its operand row
    in shared memory pays off).
    """
    if S.nnz == 0:
        return 0.0
    panel = (S.row.astype(np.int64) // panel_rows)
    key = panel * np.int64(S.shape[1]) + S.col.astype(np.int64)
    _, counts = np.unique(key, return_counts=True)
    dense_nnz = int(counts[counts >= threshold].sum())
    return dense_nnz / S.nnz


@register_spmm
class ASpTSpMM(SpMMKernel):
    """ASpT: preprocessing splits nnz into smem-staged dense + sparse parts."""

    name = "aspt"

    def __init__(
        self,
        *,
        panel_rows: int = 64,
        threshold: int = 4,
        warps_per_block: int = 8,
        host: HostCostParams = DEFAULT_HOST,
    ) -> None:
        self.panel_rows = panel_rows
        self.threshold = threshold
        self.warps_per_block = warps_per_block
        self.host = host

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        f_dense = dense_fraction(S, self.panel_rows, self.threshold)
        nnz = S.nnz
        sector = device.l2_sector_bytes
        feats = float(k)
        row_sectors = feats * 4 / sector

        # One warp per panel-tile of 256 nnz; both parts balanced by the
        # tiling, the difference is operand traffic.
        npw = 256.0
        num_warps = max(1, int(np.ceil(nnz / npw)))
        nnz_per_warp = np.full(num_warps, npw)
        nnz_per_warp[-1] = nnz - npw * (num_warps - 1) if nnz else 0

        dense_nnz = nnz_per_warp * f_dense
        sparse_nnz = nnz_per_warp * (1.0 - f_dense)

        # Dense part: operand rows staged once per (panel, column) into
        # shared memory — traffic divided by the threshold-level reuse.
        reuse = max(float(self.threshold), 1.0)
        dense_part_sectors = dense_nnz * row_sectors / reuse
        sparse_part_sectors = sparse_nnz * row_sectors
        hit = estimate_hit_rate(
            S.col, bytes_per_item=k * 4.0, device=device,
            concurrent_warps=num_warps,
        )
        l2_a, dram_a = split_by_hit_rate(
            dense_part_sectors + sparse_part_sectors, hit
        )

        issue = nnz_per_warp * (
            1.0                                  # staged sparse read
            + np.ceil(feats / 32.0)              # dense loads
            + np.ceil(feats / 32.0)              # FMA
            + 1.5                                # tile bookkeeping
        ) + 24.0
        fma = nnz_per_warp * np.ceil(feats / 32.0)
        sparse_sectors = nnz_per_warp * 0.25 * 2
        write_sectors = np.full(num_warps, row_sectors * 2.0)

        work = WarpWorkload(
            issue=issue,
            l2_sectors=l2_a,
            dram_sectors=sparse_sectors + dram_a + write_sectors,
            fma=fma,
        )
        config = LaunchConfig(
            warps_per_block=self.warps_per_block,
            registers_per_thread=40,
            shared_mem_per_block=32 * 1024,  # operand staging buffers
        )
        stats = simulate_launch(device, work, config, cost)
        return stats, aspt_preprocess_s(S, self.host)
