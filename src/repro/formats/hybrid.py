"""Hybrid CSR/COO format (paper Fig. 2(d)) — the format HP kernels consume.

The hybrid format is row-major-sorted COO: CSR's compressed row pointer is
decoded into a complete per-element row-index array while the row-grouped
ordering of CSR is preserved.  GNN frameworks store sampled subgraphs in
this format directly (paper Section II), which is why HP-SpMM / HP-SDDMM
need no preprocessing at kernel-launch time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .base import SparseFormatError, as_index_array, as_value_array, check_bounds, check_shape
from .coo import COOMatrix
from .csr import CSRMatrix


@dataclass(frozen=True)
class HybridMatrix:
    """Row-sorted COO with the invariant that rows are grouped and ascending.

    Attributes
    ----------
    row, col : int32 arrays of length ``nnz``
        Row / column index of each element; ``row`` is non-decreasing.
    val : float32 array of length ``nnz``
        Stored values.
    shape : (int, int)
        Dense shape ``(M, N)``.
    """

    row: np.ndarray
    col: np.ndarray
    val: np.ndarray
    shape: tuple[int, int]

    @classmethod
    def from_arrays(cls, row, col, val=None, *, shape=None) -> "HybridMatrix":
        """Build from raw arrays, verifying the row-sorted invariant."""
        r = as_index_array(row, "row")
        c = as_index_array(col, "col")
        if r.size != c.size:
            raise SparseFormatError(
                f"row ({r.size}) and col ({c.size}) lengths differ"
            )
        v = as_value_array(val, "val", r.size)
        if r.size > 1 and np.any(np.diff(r) < 0):
            raise SparseFormatError(
                "hybrid CSR/COO requires non-decreasing row indices; "
                "use COOMatrix.sorted_by_row() first"
            )
        if shape is None:
            m = int(r[-1]) + 1 if r.size else 0
            n = int(c.max()) + 1 if c.size else 0
            shape = (m, n)
        m, n = check_shape(shape)
        check_bounds(r, m, "row")
        check_bounds(c, n, "col")
        return cls(row=r, col=c, val=v, shape=(m, n))

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "HybridMatrix":
        """Sort a COO matrix row-major and wrap it."""
        s = coo if coo.is_row_sorted() else coo.sorted_by_row()
        return cls(row=s.row, col=s.col, val=s.val, shape=s.shape)

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "HybridMatrix":
        """Decode CSR's row pointer into a full row-index array (Fig. 2(d))."""
        return cls(
            row=csr.decode_row_indices(),
            col=csr.indices.copy(),
            val=csr.data.copy(),
            shape=csr.shape,
        )

    @classmethod
    def from_scipy(cls, mat) -> "HybridMatrix":
        """Convert any scipy sparse matrix."""
        return cls.from_csr(CSRMatrix.from_scipy(mat))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored elements."""
        return int(self.val.size)

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    def memory_elements(self) -> int:
        """Storage cost in array elements: ``3 * NNZ`` (paper Section II)."""
        return 3 * self.nnz

    def row_degrees(self) -> np.ndarray:
        """Number of stored elements per row."""
        return np.bincount(self.row, minlength=self.shape[0]).astype(np.int64)

    def indptr(self) -> np.ndarray:
        """Recover the CSR row pointer from the decoded row indices."""
        counts = np.bincount(self.row, minlength=self.shape[0])
        ptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        return ptr

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        """View as (already sorted) COO."""
        return COOMatrix(row=self.row, col=self.col, val=self.val, shape=self.shape)

    def to_csr(self) -> CSRMatrix:
        """Compress the row-index array back into CSR."""
        return CSRMatrix(
            indptr=self.indptr().astype(self.row.dtype),
            indices=self.col.copy(),
            data=self.val.copy(),
            shape=self.shape,
        )

    def to_scipy(self) -> sp.csr_matrix:
        """Convert to ``scipy.sparse.csr_matrix``."""
        return self.to_csr().to_scipy()

    def to_dense(self) -> np.ndarray:
        """Densify (test-sized matrices only); duplicate entries are summed."""
        return self.to_coo().to_dense()

    def permute_rows(self, perm: np.ndarray) -> "HybridMatrix":
        """Apply a row permutation: new row ``i`` is old row ``perm[i]``.

        Used by the reordering techniques (GCR et al.).  The result is
        re-sorted to restore the hybrid invariant.
        """
        perm = np.asarray(perm)
        if perm.shape != (self.shape[0],):
            raise SparseFormatError(
                f"perm must have length {self.shape[0]}, got {perm.shape}"
            )
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(perm.size, dtype=perm.dtype)
        new_rows = inverse[self.row]
        order = np.lexsort((self.col, new_rows))
        return HybridMatrix(
            row=new_rows[order].astype(self.row.dtype),
            col=self.col[order],
            val=self.val[order],
            shape=self.shape,
        )

    def permute_symmetric(self, perm: np.ndarray) -> "HybridMatrix":
        """Apply the same permutation to rows and columns.

        This is the transform GCR performs on a (square) adjacency matrix:
        nodes of one community become contiguous in both dimensions.
        """
        if self.shape[0] != self.shape[1]:
            raise SparseFormatError("symmetric permutation requires a square matrix")
        perm = np.asarray(perm)
        if perm.shape != (self.shape[0],):
            raise SparseFormatError(
                f"perm must have length {self.shape[0]}, got {perm.shape}"
            )
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(perm.size, dtype=perm.dtype)
        new_rows = inverse[self.row]
        new_cols = inverse[self.col]
        order = np.lexsort((new_cols, new_rows))
        return HybridMatrix(
            row=new_rows[order].astype(self.row.dtype),
            col=new_cols[order].astype(self.col.dtype),
            val=self.val[order],
            shape=self.shape,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HybridMatrix(shape={self.shape}, nnz={self.nnz})"
