"""The selection model: a small deterministic CART over world sweeps.

A classification tree over the structural feature vector, fit offline
from full-sweep oracle winners and serialized as JSON in-repo — the
dependency-free analogue of AutoSAGE's input-aware scheduler.  Leaves
carry the *full* ranked kernel field (win counts, win share, mean
total time) plus the modal DTP/HVMA schedule of their region, so a
prediction is a ranked candidate list, not a single label — exactly
what a top-k predicted frontier needs.

Everything here is deterministic by construction: splits are chosen by
exact Gini gain with ``(feature index, threshold)`` tie-breaks,
aggregate statistics are computed in fixed row order, and serialization
is ``sort_keys`` JSON of round-trippable floats.  Fitting twice from
the same world data yields byte-identical model files (CI asserts this
with a straight ``cmp``), and a reloaded model predicts identically to
the in-memory one.
"""

from __future__ import annotations

import json
import os

from ..perf.fingerprint import FEATURE_NAMES, feature_vector

#: Model file schema version.
SCHEMA = "repro.select/v1"

#: Gains at or below this are noise, not structure: stop splitting.
_MIN_GAIN = 1e-12

DEFAULT_MAX_DEPTH = 10
DEFAULT_MIN_LEAF = 1


class ModelFormatError(ValueError):
    """A model file failed schema validation."""


def _gini(labels: list[str]) -> float:
    n = len(labels)
    if n == 0:
        return 0.0
    counts: dict[str, int] = {}
    for lab in labels:
        counts[lab] = counts.get(lab, 0) + 1
    return 1.0 - sum((c / n) ** 2 for c in counts.values())


def _modal(values: list[int]) -> int | None:
    """Most frequent value; ties break toward the smallest value."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    counts: dict[int, int] = {}
    for v in present:
        counts[v] = counts.get(v, 0) + 1
    return min(counts, key=lambda v: (-counts[v], v))


def _leaf(rows: list[dict], nnz_index: int) -> dict:
    """Leaf payload: ranked kernel field + modal schedule for the region."""
    n = len(rows)
    wins: dict[str, int] = {}
    time_sum: dict[str, float] = {}
    time_cnt: dict[str, int] = {}
    for row in rows:
        wins[row["winner"]] = wins.get(row["winner"], 0) + 1
        for kernel, t in row["times"].items():
            time_sum[kernel] = time_sum.get(kernel, 0.0) + t
            time_cnt[kernel] = time_cnt.get(kernel, 0) + 1
    mean_time = {k: time_sum[k] / time_cnt[k] for k in time_sum}
    # Rank the whole field seen at this leaf: winners first (by win
    # count), the rest by mean total time — so candidates beyond top-1
    # are the region's actual runners-up, not alphabetical filler.
    ranking = [
        {
            "kernel": kernel,
            "wins": wins.get(kernel, 0),
            "share": wins.get(kernel, 0) / n,
            "mean_total_s": mean_time[kernel],
        }
        for kernel in sorted(
            mean_time,
            key=lambda name: (-wins.get(name, 0), mean_time[name], name),
        )
    ]
    return {
        "leaf": {
            "n": n,
            "mean_nnz": sum(r["x"][nnz_index] for r in rows) / n,
            "nnz_per_warp": _modal([r["nnz_per_warp"] for r in rows]),
            "vector_width": _modal([r["vector_width"] for r in rows]),
            "ranking": ranking,
        }
    }


def _build(
    rows: list[dict],
    depth: int,
    *,
    max_depth: int,
    min_leaf: int,
    num_features: int,
    nnz_index: int,
) -> dict:
    labels = [r["winner"] for r in rows]
    if (
        depth >= max_depth
        or len(rows) < 2 * min_leaf
        or len(set(labels)) == 1
    ):
        return _leaf(rows, nnz_index)
    parent = _gini(labels)
    n = len(rows)
    best = None  # ((-gain, feature, threshold), feature, threshold, lo, hi)
    for f in range(num_features):
        values = sorted({r["x"][f] for r in rows})
        for a, b in zip(values, values[1:]):
            t = (a + b) / 2.0
            lo = [r for r in rows if r["x"][f] <= t]
            hi = [r for r in rows if r["x"][f] > t]
            if len(lo) < min_leaf or len(hi) < min_leaf:
                continue
            gain = parent - (
                len(lo) * _gini([r["winner"] for r in lo])
                + len(hi) * _gini([r["winner"] for r in hi])
            ) / n
            key = (-gain, f, t)
            if best is None or key < best[0]:
                best = (key, f, t, lo, hi)
    if best is None or -best[0][0] <= _MIN_GAIN:
        return _leaf(rows, nnz_index)
    _, f, t, lo, hi = best
    child = dict(
        max_depth=max_depth, min_leaf=min_leaf,
        num_features=num_features, nnz_index=nnz_index,
    )
    return {
        "f": f,
        "t": t,
        "lo": _build(lo, depth + 1, **child),
        "hi": _build(hi, depth + 1, **child),
    }


def _tree_stats(node: dict) -> tuple[int, int]:
    """``(leaves, depth)`` of a serialized tree."""
    if "leaf" in node:
        return 1, 0
    ll, dl = _tree_stats(node["lo"])
    lh, dh = _tree_stats(node["hi"])
    return ll + lh, 1 + max(dl, dh)


class SelectionModel:
    """A fitted (or reloaded) selection model over one op's kernels."""

    def __init__(self, data: dict) -> None:
        if data.get("schema") != SCHEMA:
            raise ModelFormatError(
                f"expected schema {SCHEMA!r}, got {data.get('schema')!r}"
            )
        for key in ("op", "feature_names", "kernels", "tree", "mean_nnz"):
            if key not in data:
                raise ModelFormatError(f"model is missing {key!r}")
        if list(data["feature_names"]) != list(FEATURE_NAMES):
            raise ModelFormatError(
                "model feature names do not match this build's "
                f"FEATURE_NAMES: {data['feature_names']}"
            )
        self.data = data

    # -- accessors ------------------------------------------------------
    @property
    def op(self) -> str:
        return self.data["op"]

    @property
    def kernels(self) -> list[str]:
        return list(self.data["kernels"])

    @property
    def mean_nnz(self) -> float:
        return float(self.data["mean_nnz"])

    @property
    def stats(self) -> dict:
        return dict(self.data.get("stats", {}))

    # -- prediction -----------------------------------------------------
    def leaf_for_x(self, x: list[float]) -> dict:
        """Walk the tree with a FEATURE_NAMES-ordered vector."""
        node = self.data["tree"]
        while "leaf" not in node:
            node = node["lo"] if x[node["f"]] <= node["t"] else node["hi"]
        return node["leaf"]

    def leaf_for(self, features: dict) -> dict:
        """Walk the tree with a :func:`structural_features` dict."""
        return self.leaf_for_x(feature_vector(features))

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(self.data, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SelectionModel":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ModelFormatError(f"model is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ModelFormatError("model JSON must be an object")
        return cls(data)


def fit_model(
    rows: list[dict],
    *,
    op: str = "spmm",
    k: int | None = None,
    device: str | None = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
    min_leaf: int = DEFAULT_MIN_LEAF,
    sources: tuple[str, ...] = (),
) -> SelectionModel:
    """Fit a CART from training rows (see :mod:`repro.select.dataset`).

    Pure function of ``(rows, parameters)``: no clocks, no randomness,
    no host identity — the determinism contract the model-file ``cmp``
    gate in CI rests on.
    """
    if not rows:
        raise ValueError("cannot fit a selection model from zero rows")
    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    if min_leaf < 1:
        raise ValueError("min_leaf must be >= 1")
    nnz_index = FEATURE_NAMES.index("nnz")
    tree = _build(
        rows, 0,
        max_depth=max_depth, min_leaf=min_leaf,
        num_features=len(FEATURE_NAMES), nnz_index=nnz_index,
    )
    kernels = sorted({k for r in rows for k in r["times"]})
    leaves, depth = _tree_stats(tree)
    model = SelectionModel(
        {
            "schema": SCHEMA,
            "op": op,
            "k": k,
            "device": device,
            "feature_names": list(FEATURE_NAMES),
            "kernels": kernels,
            "mean_nnz": sum(r["x"][nnz_index] for r in rows) / len(rows),
            "params": {"max_depth": max_depth, "min_leaf": min_leaf},
            "trained_on": list(sources),
            "stats": {"points": len(rows), "leaves": leaves, "depth": depth},
            "tree": tree,
        }
    )
    train_eval = evaluate_model(model, rows)
    model.data["stats"]["top1_train"] = train_eval["top1_accuracy"]
    return model


def evaluate_model(model: SelectionModel, rows: list[dict]) -> dict:
    """Top-1 accuracy and mean regret of a model against oracle rows.

    Regret prices a miss by its cost, not just its existence:
    ``times[predicted] / times[winner] - 1`` per row (0.0 when the
    prediction is the oracle winner), averaged over every row whose
    sweep actually timed the predicted kernel.  Rows where the
    predicted kernel has no oracle time (it errored in the sweep) are
    reported as ``unpriced`` rather than silently skewing the mean.
    """
    correct = 0
    regrets: list[float] = []
    unpriced = 0
    for row in rows:
        predicted = model.leaf_for_x(row["x"])["ranking"][0]["kernel"]
        if predicted == row["winner"]:
            correct += 1
        times = row["times"]
        winner_t = times.get(row["winner"])
        if predicted in times and winner_t:
            regrets.append(times[predicted] / winner_t - 1.0)
        else:
            unpriced += 1
    n = len(rows)
    return {
        "points": n,
        "top1_correct": correct,
        "top1_accuracy": correct / n if n else 0.0,
        "mean_regret": sum(regrets) / len(regrets) if regrets else 0.0,
        "regret_points": len(regrets),
        "unpriced": unpriced,
    }


def load_model(path: str) -> SelectionModel:
    """Load and validate a model file; raises on absent/corrupt files."""
    with open(path) as f:
        return SelectionModel.from_json(f.read())


def save_model(model: SelectionModel, path: str) -> str:
    """Atomically write a model file; returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        f.write(model.to_json())
    os.replace(tmp, path)
    return path
