"""End-to-end CLI gate: ``python -m repro.analysis`` exit codes.

The acceptance criteria the driver enforces: exit 0 on the repo as-is,
nonzero on each seeded adversarial fixture.  These run the real module
in a subprocess so the exit-code plumbing itself is under test.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import ADVERSARIAL_PLANS, procsafety_fixture_files

pytestmark = pytest.mark.analysis

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _run(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def test_repo_passes_with_exit_zero():
    proc = _run("--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["exit_code"] == 0
    assert payload["counts"]["error"] == 0
    assert payload["plans_checked"] > 0
    assert payload["files_linted"] > 0
    assert payload["files_scanned"] > 0


@pytest.mark.parametrize("name", sorted(ADVERSARIAL_PLANS))
def test_each_adversarial_fixture_exits_nonzero(name):
    proc = _run("--fixture", name, "--json")
    assert proc.returncode != 0, f"fixture {name!r} passed: {proc.stdout}"
    payload = json.loads(proc.stdout)
    assert payload["counts"]["error"] > 0
    rules = {d["rule"] for d in payload["diagnostics"]}
    expected = {
        "gap": "plan/coverage-gap",
        "overlap": "plan/coverage-overlap",
        "race": "plan/row-race",
        "occupancy": "plan/threads-per-block",
    }[name]
    assert expected in rules


def test_lint_only_on_one_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
    proc = _run("--no-plans", str(bad))
    assert proc.returncode == 1
    assert "lint/unseeded-rng" in proc.stdout


def test_text_output_ends_with_summary_line():
    proc = _run("--no-lint")
    assert proc.returncode == 0
    last = proc.stdout.strip().splitlines()[-1]
    assert "plans checked" in last and "0 errors" in last


# -- the procsafety layer and waiver listing -----------------------------

def test_procsafety_mode_clean_tree_exits_zero():
    proc = _run("--procsafety", "--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["exit_code"] == 0
    assert payload["files_scanned"] > 50
    # Only the requested layer ran.
    assert payload["plans_checked"] == 0
    assert payload["files_linted"] == 0


def test_procsafety_mode_fixture_exits_nonzero():
    # One fixture through the real CLI pins the exit-code plumbing; the
    # full corpus is covered in-process (test_procsafety) and by CI.
    fixture = procsafety_fixture_files()[0]
    proc = _run("--procsafety", fixture, "--json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["counts"]["error"] > 0


def test_procsafety_violation_on_one_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import os\n"
        "def f():\n"
        "    return os.getenv('REPRO_BOGUS_KNOB')\n"
    )
    proc = _run("--procsafety", str(bad))
    assert proc.returncode == 1
    assert "procsafety/env-drift" in proc.stdout


def test_no_procsafety_skips_the_layer(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import os\n"
        "def f():\n"
        "    return os.getenv('REPRO_BOGUS_KNOB')\n"
    )
    proc = _run("--no-plans", "--no-procsafety", str(bad))
    assert proc.returncode == 0, proc.stdout


def test_list_waivers_inventories_the_tree():
    proc = _run("--list-waivers")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "allow(wallclock)" in proc.stdout
    last = proc.stdout.strip().splitlines()[-1]
    assert "waivers in" in last and "files" in last
    # Every listed waiver prints its justification, never a blank.
    for line in proc.stdout.strip().splitlines()[:-1]:
        assert " — " in line and not line.endswith("— ")
