"""Unified observability layer: tracing, counters, manifests, perf diffs.

The paper's whole evaluation is profiler-driven (Table V is "total CUDA
computation time" read off Nsight Systems), so the reproduction needs an
equivalent way to see where time goes across a run.  ``repro.obs``
provides four zero-dependency pieces (DESIGN.md §2, "obs/"):

* :mod:`repro.obs.tracer` — a span tracer (context-manager API, off by
  default, enabled via ``REPRO_TRACE``) exporting Chrome-trace/Perfetto
  JSON, instrumented into the bench sweeps, kernel estimates, the
  estimate cache, the process-pool fan-out and GNN training accrual;
* :mod:`repro.obs.metrics` — a process-wide counters registry unifying
  the previously scattered stats (estimate-cache hits/misses/evictions,
  plan-check pass/fail, pool jobs/fallbacks, disk-cache errors) behind
  one :func:`snapshot`;
* :mod:`repro.obs.manifest` — run manifests (config, env flags,
  versions, metrics) written next to every ``results/`` report;
* :mod:`repro.obs.diff` — a report comparator (``python -m repro.obs
  diff OLD.json NEW.json --threshold 0.10``) that exits nonzero on
  wall-clock regressions, wired into the verify recipe so the perf
  trajectory of ``BENCH_harness.json`` accumulates across PRs.

Environment variables
---------------------
``REPRO_TRACE``
    Off when empty/``0``.  ``1`` enables tracing with the default output
    path ``repro-trace.json``; any other value is the output path.
"""

from .metrics import (
    DEFAULT_LATENCY_BOUNDS_S,
    METRICS,
    LatencyHistogram,
    MetricsRegistry,
    get_histogram,
    histogram_summaries,
    observe_latency,
    reset_histograms,
    snapshot,
)
from .tracer import (
    Tracer,
    export_trace,
    get_tracer,
    set_tracer,
    trace_emit,
    trace_span,
    traced,
    tracing_enabled,
)
from .manifest import run_manifest, write_manifest

__all__ = [
    "DEFAULT_LATENCY_BOUNDS_S",
    "METRICS",
    "LatencyHistogram",
    "MetricsRegistry",
    "get_histogram",
    "histogram_summaries",
    "observe_latency",
    "reset_histograms",
    "snapshot",
    "Tracer",
    "export_trace",
    "get_tracer",
    "set_tracer",
    "trace_emit",
    "trace_span",
    "traced",
    "tracing_enabled",
    "run_manifest",
    "write_manifest",
]
