"""Row-split baseline (Yang et al., Euro-Par'18 / GraphBLAST).

The classic node-parallel SpMM: one warp walks one whole CSR row across
the full feature dimension.  Sparse indices are read per element with
broadcast loads (no shared-memory staging), so each nonzero costs a full
32-byte sector per index array; there is no feature-dimension splitting,
so a single heavy row keeps one warp busy for its entire length — the
worst imbalance profile among the paper's baselines (Table III reports
the largest average speedup, 10.85x, against it).
"""

from __future__ import annotations


from ...gpusim import CostParams, DeviceSpec, simulate_launch
from ...formats import HybridMatrix
from ..api import SpMMKernel, register_spmm
from .node_parallel import NodeParallelProfile, build_node_parallel_workload

ROWSPLIT_PROFILE = NodeParallelProfile(
    features_per_warp=1 << 30,     # whole K handled by one warp
    vector_width=1,
    sparse_instr_per_nnz=3.0,      # per-element col + val broadcast loads
    sparse_sectors_per_nnz=2.0,    # one sector per 4-byte broadcast load
    misaligned_dense=True,         # row starts carry no alignment guarantee
    row_overhead_instr=8.0,
    warps_per_block=8,
    registers_per_thread=32,
    shared_mem_per_block=0,
    dense_traffic_factor=1.2,
)


@register_spmm
class RowSplitSpMM(SpMMKernel):
    """GraphBLAST row-split: CSR, warp-per-row, scalar loads, full K."""

    name = "row-split"

    def __init__(self, profile: NodeParallelProfile = ROWSPLIT_PROFILE) -> None:
        self.profile = profile

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        work, config = build_node_parallel_workload(S, k, self.profile, device)
        return simulate_launch(device, work, config, cost), 0.0
