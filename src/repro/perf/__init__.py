"""Experiment-acceleration subsystem: estimate memoization + fan-out.

Three pillars (DESIGN.md §2, "perf/"):

* :mod:`repro.perf.fingerprint` — content fingerprints of matrices,
  devices, cost params and kernel configurations;
* :mod:`repro.perf.estimate_cache` — the sweep-level memo layer every
  ``SpMMKernel.estimate`` / ``SDDMMKernel.estimate`` call routes
  through (in-process LRU + optional on-disk JSON store);
* :mod:`repro.perf.parallel` — ``REPRO_JOBS``-controlled process-pool
  ``parallel_map`` with deterministic ordering and serial fallback.
"""

from .estimate_cache import (
    EstimateCache,
    EstimateCacheStats,
    cache_enabled,
    cached_estimate,
    estimate_cache_stats,
    get_estimate_cache,
)
from .fingerprint import (
    FEATURE_NAMES,
    dataclass_fingerprint,
    feature_vector,
    kernel_config_fingerprint,
    matrix_fingerprint,
    structural_features,
)
from .parallel import parallel_map, resolve_jobs

__all__ = [
    "EstimateCache",
    "EstimateCacheStats",
    "cache_enabled",
    "cached_estimate",
    "estimate_cache_stats",
    "get_estimate_cache",
    "FEATURE_NAMES",
    "dataclass_fingerprint",
    "feature_vector",
    "kernel_config_fingerprint",
    "matrix_fingerprint",
    "structural_features",
    "parallel_map",
    "resolve_jobs",
]
