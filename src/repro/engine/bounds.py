"""Canonical vocabulary for the "dominant bound" label on estimates.

Two estimation paths historically labeled their answers independently:
the full simulator (:func:`repro.gpusim.launch.simulate_launch`) picks
the slowest of its six modeled bounds (plus the ``launch``-overhead
degenerate case), while the serve layer's quick roofline model emitted
its own two-word vocabulary.  Both now draw from this single constant
set, and the serve report schema asserts membership
(:meth:`repro.serve.request.EstimateResponse` validates on
construction), so a new bound label cannot be introduced in one path
without the other — and downstream report consumers — seeing it here.
"""

from __future__ import annotations

BOUND_BALANCE = "balance"  #: list-scheduling makespan (warp imbalance)
BOUND_ISSUE = "issue"      #: instruction-issue throughput
BOUND_FMA = "fma"          #: FP32 FMA roofline
BOUND_L2 = "l2"            #: L2 bandwidth
BOUND_DRAM = "dram"        #: DRAM bandwidth
BOUND_ATOMIC = "atomic"    #: atomic-unit throughput
BOUND_LAUNCH = "launch"    #: launch overhead dominates (tiny kernels)

#: Every label an estimate's ``bound`` field may legally carry.
VALID_BOUNDS: tuple[str, ...] = (
    BOUND_BALANCE,
    BOUND_ISSUE,
    BOUND_FMA,
    BOUND_L2,
    BOUND_DRAM,
    BOUND_ATOMIC,
    BOUND_LAUNCH,
)


def check_bound(bound: str) -> str:
    """Validate a bound label; returns it unchanged on success."""
    if bound not in VALID_BOUNDS:
        raise ValueError(
            f"unknown bound label {bound!r}; valid bounds are "
            f"{list(VALID_BOUNDS)}"
        )
    return bound
