"""FusedMM — the fused SDDMM + SpMM kernel of Rahman et al. [22].

The paper's related work (Section II) cites FusedMM, which fuses the two
kernels GNNs alternate between: ``O = S(g(SDDMM(S, A1, A2))) @ X``.
Fusion removes (a) writing the nnz-length intermediate to global memory
and reading it back, and (b) the second pass over the sparse index
arrays.  This module provides the functional semantics plus a cost model
built from the HP kernels' workloads with those two savings applied —
an optional-extension feature showing where the hybrid-parallel design
goes next.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..formats import HybridMatrix
from ..gpusim import (
    DEFAULT_COST,
    CostParams,
    DeviceSpec,
    KernelStats,
    TESLA_V100,
    simulate_launch,
)
from .hp_sddmm import _hp_sddmm_workload
from .hp_spmm import _hp_spmm_workload
from .hp_spmm import HPSpMM
from .hp_sddmm import HPSDDMM
from .reference import sddmm_reference, spmm_reference


def fusedmm_reference(
    S: HybridMatrix,
    A1: np.ndarray,
    A2T: np.ndarray,
    X: np.ndarray,
    *,
    edge_fn: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Exact numerics of the fused operation.

    ``edge_fn`` is the elementwise edge function ``g`` (identity when
    omitted; GNN uses include sigmoid or ReLU on the edge scores).
    """
    vals = sddmm_reference(S, A1, A2T)
    if edge_fn is not None:
        vals = np.asarray(edge_fn(vals), dtype=np.float32)
    weighted = HybridMatrix(row=S.row, col=S.col, val=vals, shape=S.shape)
    return spmm_reference(weighted, X)


@dataclass(frozen=True)
class FusedMMResult:
    """Numerics + simulated stats of one fused execution."""

    output: np.ndarray | None
    stats: KernelStats
    unfused_time_s: float   #: cost of running the two kernels separately

    @property
    def fusion_speedup(self) -> float:
        return self.unfused_time_s / self.stats.time_s if self.stats.time_s else 0.0


class FusedMM:
    """Fused SDDMM+SpMM with HP-style hybrid-parallel slices."""

    name = "fusedmm"

    def __init__(self, *, warps_per_block: int = 8, alpha: float = 4.0):
        self.warps_per_block = warps_per_block
        self.alpha = alpha
        self._spmm = HPSpMM(warps_per_block=warps_per_block, alpha=alpha)
        self._sddmm = HPSDDMM(warps_per_block=warps_per_block, alpha=alpha)

    def estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec = TESLA_V100,
        cost: CostParams = DEFAULT_COST,
    ) -> FusedMMResult:
        """Timing-only evaluation of the fused kernel."""
        if k <= 0:
            raise ValueError("k must be positive")
        part = self._spmm.partition(S, k, device)
        sddmm_work, _ = _hp_sddmm_workload(S, k, part, device)
        spmm_work, config = _hp_spmm_workload(S, k, part, device)

        sector = device.l2_sector_bytes
        # Fusion savings per warp:
        #  * the SpMM stage reuses the staged sparse tile -> drop its
        #    sparse traffic and tile-load instructions;
        #  * the nnz intermediate never round-trips global memory -> drop
        #    the SDDMM stage's value stores and the equivalent reads.
        n = sddmm_work.num_warps
        per_slice_nnz = np.repeat(
            np.diff(
                np.append(
                    np.arange(0, S.nnz, part.nnz_per_warp), S.nnz
                )
            ).astype(np.float64),
            part.num_feature_groups,
        )[:n]
        value_io = per_slice_nnz * 4.0 / sector  # store + re-read, each
        sparse_reload = per_slice_nnz * 12.0 / sector

        fused_issue = (
            sddmm_work.issue + spmm_work.issue
            - per_slice_nnz            # dropped intermediate stores
            - np.ceil(per_slice_nnz / 32.0) * 3.0  # dropped tile reloads
        )
        fused_l2 = sddmm_work.l2_sectors + spmm_work.l2_sectors
        fused_dram = np.maximum(
            sddmm_work.dram_sectors + spmm_work.dram_sectors
            - 2.0 * value_io - sparse_reload,
            0.0,
        )
        fused = type(sddmm_work)(
            issue=np.maximum(fused_issue, 1.0),
            l2_sectors=fused_l2,
            dram_sectors=fused_dram,
            fma=sddmm_work.fma + spmm_work.fma,
            atomics=sddmm_work.atomics + spmm_work.atomics,
        )
        stats = simulate_launch(device, fused, config, cost)
        unfused = (
            self._sddmm.estimate(S, k, device, cost).stats.time_s
            + self._spmm.estimate(S, k, device, cost).stats.time_s
        )
        return FusedMMResult(output=None, stats=stats, unfused_time_s=unfused)

    def run(
        self,
        S: HybridMatrix,
        A1: np.ndarray,
        A2T: np.ndarray,
        X: np.ndarray,
        device: DeviceSpec = TESLA_V100,
        cost: CostParams = DEFAULT_COST,
        *,
        edge_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> FusedMMResult:
        """Fused execution: exact numerics plus simulated stats."""
        est = self.estimate(S, A1.shape[1], device, cost)
        out = fusedmm_reference(S, A1, A2T, X, edge_fn=edge_fn)
        return FusedMMResult(
            output=out, stats=est.stats, unfused_time_s=est.unfused_time_s
        )
