"""The perf-regression comparator (repro.obs diff)."""

import json

import pytest

from repro.obs.diff import (
    ReportError,
    diff_reports,
    is_timing_key,
    load_report,
)
from repro.obs.__main__ import main as obs_main

pytestmark = pytest.mark.obs


def _harness_report(fig9_s=0.4, fig12_s=5.0, hits=100):
    """A BENCH_harness.json-shaped document."""
    return {
        "pipelines": {
            "fig9": {"seconds": fig9_s, "estimate_cache_hits": hits},
            "fig12": {"seconds": fig12_s, "estimate_cache_misses": 20},
        },
        "estimate_cache": {"hits": hits, "hit_rate": 0.33},
        "meta": {"cpus": 4},
    }


# ----------------------------------------------------------------------
# diff_reports
# ----------------------------------------------------------------------

def test_identical_reports_pass():
    result = diff_reports(_harness_report(), _harness_report())
    assert result.ok
    assert result.regressions == []
    assert "ok" in result.render()


def test_regression_past_threshold_flags():
    result = diff_reports(
        _harness_report(fig9_s=0.4), _harness_report(fig9_s=0.5)
    )
    assert not result.ok
    (reg,) = result.regressions
    assert reg.path == "pipelines.fig9.seconds"
    assert reg.rel_change == pytest.approx(0.25)
    assert "REGRESSION" in result.render()


def test_threshold_is_inclusive_boundary():
    # Exactly +10% (the default threshold) is allowed; just above is not.
    at = diff_reports(
        _harness_report(fig9_s=1.0), _harness_report(fig9_s=1.10)
    )
    assert at.ok
    above = diff_reports(
        _harness_report(fig9_s=1.0), _harness_report(fig9_s=1.1001)
    )
    assert not above.ok


def test_improvement_and_info_changes_pass():
    # Faster timing + changed counters: not a regression.
    result = diff_reports(
        _harness_report(fig9_s=0.4, hits=100),
        _harness_report(fig9_s=0.2, hits=999),
    )
    assert result.ok


def test_non_timing_keys_never_gate():
    old = {"estimate_cache": {"hits": 10}}
    new = {"estimate_cache": {"hits": 10_000}}
    assert diff_reports(old, new).ok


def test_keys_in_only_one_report_are_not_gated():
    old = _harness_report()
    new = _harness_report()
    del new["pipelines"]["fig12"]
    new["pipelines"]["table3"] = {"seconds": 1.0}
    result = diff_reports(old, new)
    assert result.ok
    paths = {e.path: e for e in result.entries}
    assert paths["pipelines.fig12.seconds"].new is None
    assert paths["pipelines.table3.seconds"].old is None


def test_zero_baseline_is_not_a_regression():
    old = {"x": {"seconds": 0.0}}
    new = {"x": {"seconds": 5.0}}
    assert diff_reports(old, new).ok


def test_is_timing_key():
    assert is_timing_key("pipelines.fig9.seconds")
    assert is_timing_key("a.b.time_s")
    assert is_timing_key("wall_seconds")
    assert not is_timing_key("estimate_cache.hits")
    assert not is_timing_key("meta.cpus")


def test_negative_threshold_rejected():
    with pytest.raises(ValueError):
        diff_reports({}, {}, threshold=-0.1)


# ----------------------------------------------------------------------
# load_report + CLI exit codes
# ----------------------------------------------------------------------

def _write(path, doc):
    with open(path, "w") as f:
        json.dump(doc, f)
    return str(path)


def test_load_report_failures(tmp_path):
    with pytest.raises(ReportError, match="cannot read"):
        load_report(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{ not json")
    with pytest.raises(ReportError, match="malformed JSON"):
        load_report(str(bad))
    arr = tmp_path / "arr.json"
    arr.write_text("[1, 2]")
    with pytest.raises(ReportError, match="JSON object"):
        load_report(str(arr))


def test_cli_exit_codes(tmp_path, capsys):
    old = _write(tmp_path / "old.json", _harness_report(fig9_s=0.4))
    same = _write(tmp_path / "same.json", _harness_report(fig9_s=0.4))
    slow = _write(tmp_path / "slow.json", _harness_report(fig9_s=0.9))
    bad = str(tmp_path / "bad.json")
    (tmp_path / "bad.json").write_text("nope{")

    assert obs_main(["diff", old, same]) == 0
    assert obs_main(["diff", old, slow]) == 1
    out = capsys.readouterr().out
    assert "pipelines.fig9.seconds" in out
    # A loose threshold lets the same regression through.
    assert obs_main(["diff", old, slow, "--threshold", "2.0"]) == 0
    assert obs_main(["diff", old, bad]) == 2
    assert obs_main(["diff", old, same, "--threshold", "-1"]) == 2


def test_cli_diffs_committed_bench_harness_baseline(capsys):
    """The verify-recipe invocation: the committed baseline vs itself."""
    import os

    baseline = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_harness.json",
    )
    assert obs_main(["diff", baseline, baseline, "--threshold", "0.15"]) == 0
    assert "ok" in capsys.readouterr().out


def test_cli_snapshot_prints_json(capsys):
    assert obs_main(["snapshot"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "estimate_cache.hits" in doc
